package tiling

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/chase"
)

// stripes is a solvable system: two tiles alternating vertically, every
// row is monochrome. a = white, b = black, 2x2 tiling exists.
func stripes() *System {
	return &System{
		Tiles: []string{"w", "k"},
		Left:  map[string]bool{"w": true, "k": true},
		Right: map[string]bool{}, // filled below
		Horiz: map[[2]string]bool{},
		Vert:  map[[2]string]bool{{"w", "k"}: true, {"k", "w"}: true},
		Start: "w", Finish: "k",
	}
}

// withRight adds right-border copies so L and R stay disjoint: tiles w,k
// may continue right into wr,kr which are the only right-border tiles.
func solvable() *System {
	s := &System{
		Tiles: []string{"w", "k", "wr", "kr"},
		Left:  map[string]bool{"w": true, "k": true},
		Right: map[string]bool{"wr": true, "kr": true},
		Horiz: map[[2]string]bool{
			{"w", "wr"}: true,
			{"k", "kr"}: true,
		},
		Vert: map[[2]string]bool{
			{"w", "k"}: true, {"k", "w"}: true,
			{"wr", "kr"}: true, {"kr", "wr"}: true,
		},
		Start: "w", Finish: "k",
	}
	return s
}

// unsolvable returns a system with no tiling of any size: the start tile
// has no vertical successor and is not a finish tile, and no row can both
// start with a and end in R... here simply: V is empty and a != b, so no
// second row can ever be added and height-1 tilings would need a = b.
func unsolvable() *System {
	return &System{
		Tiles: []string{"a1", "b1", "r1"},
		Left:  map[string]bool{"a1": true, "b1": true},
		Right: map[string]bool{"r1": true},
		Horiz: map[[2]string]bool{{"a1", "r1"}: true, {"b1", "r1"}: true},
		Vert:  map[[2]string]bool{},
		Start: "a1", Finish: "b1",
	}
}

func TestValidate(t *testing.T) {
	s := solvable()
	if err := s.Validate(); err != nil {
		t.Fatalf("solvable system invalid: %v", err)
	}
	bad := solvable()
	bad.Left["wr"] = true // overlaps Right
	if err := bad.Validate(); err == nil {
		t.Fatalf("L ∩ R ≠ ∅ must be rejected")
	}
	bad2 := solvable()
	bad2.Start = "zzz"
	if err := bad2.Validate(); err == nil {
		t.Fatalf("undeclared start tile must be rejected")
	}
	bad3 := solvable()
	bad3.Horiz[[2]string{"w", "zzz"}] = true
	if err := bad3.Validate(); err == nil {
		t.Fatalf("undeclared H tile must be rejected")
	}
}

func TestBruteForceSolvable(t *testing.T) {
	grid, ok := BruteForce(solvable(), 3, 3)
	if !ok {
		t.Fatalf("solvable system: no tiling found")
	}
	// First row starts with the start tile, last row with the finish tile.
	if grid[0][0] != "w" {
		t.Errorf("first row must start with a: %v", grid)
	}
	if grid[len(grid)-1][0] != "k" {
		t.Errorf("last row must start with b: %v", grid)
	}
	// Every row ends in R.
	s := solvable()
	for _, row := range grid {
		if !s.Right[row[len(row)-1]] {
			t.Errorf("row does not end in R: %v", row)
		}
		if !s.Left[row[0]] {
			t.Errorf("row does not start in L: %v", row)
		}
	}
}

func TestBruteForceUnsolvable(t *testing.T) {
	if grid, ok := BruteForce(unsolvable(), 4, 4); ok {
		t.Fatalf("unsolvable system produced a tiling: %v", grid)
	}
}

func TestReductionProgramIsPWLNotWarded(t *testing.T) {
	// The crux of Theorem 5.1: Σ is piece-wise linear, yet (necessarily,
	// by Theorem 4.2) NOT warded — otherwise CQAns would be decidable.
	red, err := Reduce(solvable())
	if err != nil {
		t.Fatal(err)
	}
	a := analysis.Analyze(red.Program)
	if ok, vs := a.IsPWL(); !ok {
		t.Fatalf("reduction program must be piece-wise linear: %v", vs)
	}
	if ok, _ := a.IsWarded(); ok {
		t.Fatalf("reduction program must NOT be warded (else Theorem 5.1 would contradict Theorem 4.2)")
	}
}

func TestReductionFaithfulPositive(t *testing.T) {
	// Solvable system: the bounded chase must derive the query.
	red, err := Reduce(solvable())
	if err != nil {
		t.Fatal(err)
	}
	ans, res, err := chase.CertainAnswers(red.Program, red.DB, red.Query,
		chase.Options{Restricted: true, MaxDepth: 8, MaxRounds: 200, MaxFacts: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("solvable tiling: query must hold (facts=%d, truncated=%v)",
			res.DB.Len(), res.Truncated)
	}
}

func TestReductionFaithfulNegative(t *testing.T) {
	// Unsolvable system: even a deep bounded chase must not derive the
	// query (soundness of the reduction).
	red, err := Reduce(unsolvable())
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := chase.CertainAnswers(red.Program, red.DB, red.Query,
		chase.Options{Restricted: true, MaxDepth: 10, MaxRounds: 500, MaxFacts: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("unsolvable tiling: query must not hold")
	}
}

func TestReductionAgreesWithOracleOnFamilies(t *testing.T) {
	// A small family of systems with known status.
	cases := []struct {
		name string
		sys  *System
		want bool
	}{
		{"solvable", solvable(), true},
		{"unsolvable", unsolvable(), false},
		{"single cell", &System{
			Tiles: []string{"ab"},
			Left:  map[string]bool{"ab": true},
			Right: map[string]bool{},
			Horiz: map[[2]string]bool{},
			Vert:  map[[2]string]bool{},
			Start: "ab", Finish: "ab",
		}, false}, // a 1x1 tiling needs the single tile in both L and R; R empty
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, bf := BruteForce(c.sys, 3, 3)
			if bf != c.want {
				t.Fatalf("oracle disagrees with expectation: %v", bf)
			}
			red, err := Reduce(c.sys)
			if err != nil {
				t.Fatal(err)
			}
			ans, _, err := chase.CertainAnswers(red.Program, red.DB, red.Query,
				chase.Options{Restricted: true, MaxDepth: 8, MaxRounds: 200, MaxFacts: 200000})
			if err != nil {
				t.Fatal(err)
			}
			if (len(ans) == 1) != c.want {
				t.Fatalf("reduction answer %v, want %v", len(ans) == 1, c.want)
			}
		})
	}
}

func TestWideSolvableNeedsWidth2(t *testing.T) {
	// Width-2 tilings: left tile must continue into a right tile; a width-1
	// tiling is impossible because L and R are disjoint.
	s := solvable()
	grid, ok := BruteForce(s, 3, 3)
	if !ok {
		t.Fatal("no tiling")
	}
	if len(grid[0]) < 2 {
		t.Fatalf("width-1 tiling should be impossible (L∩R=∅): %v", grid)
	}
}
