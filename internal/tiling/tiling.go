// Package tiling implements the undecidability machinery of Section 5
// (Theorem 5.1): tiling systems, the reduction from UnboundedTiling to
// CQAns(PWL), and a brute-force tiler used as ground truth on small
// instances.
//
// A tiling system T = (T, L, R, H, V, a, b) asks for a function
// f : [n] × [m] → T (n columns, m rows, both unbounded) with
//
//	f(1,1) = a, f(1,m) = b,
//	f(1,i) ∈ L and f(n,i) ∈ R for every i ∈ [m],
//	(f(x,y), f(x+1,y)) ∈ H and (f(x,y), f(x,y+1)) ∈ V.
//
// The reduction produces a FIXED piece-wise linear set of TGDs Σ and a
// FIXED Boolean CQ q (independent of T — that is what makes the result a
// DATA complexity lower bound) plus a database D_T encoding T, such that T
// has a tiling iff () ∈ cert(q, D_T, Σ).
//
// Note the paper's first CTiling rule checks Start(y) but not Le(y), and
// the query checks Finish(y) but not Le(y); the reduction is faithful to
// the formal definition when a, b ∈ L, which our generators ensure (a
// tiling needs f(1,1) = a ∈ L anyway for column 1 to satisfy L).
package tiling

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/storage"
)

// System is a tiling system.
type System struct {
	Tiles  []string
	Left   map[string]bool
	Right  map[string]bool
	Horiz  map[[2]string]bool
	Vert   map[[2]string]bool
	Start  string // tile a
	Finish string // tile b
}

// Validate checks structural sanity: a, b and all constraint tiles are
// declared, and L ∩ R = ∅ (as the paper requires).
func (s *System) Validate() error {
	declared := make(map[string]bool)
	for _, t := range s.Tiles {
		declared[t] = true
	}
	if !declared[s.Start] || !declared[s.Finish] {
		return fmt.Errorf("tiling: start/finish tile not declared")
	}
	for t := range s.Left {
		if !declared[t] {
			return fmt.Errorf("tiling: left tile %q not declared", t)
		}
		if s.Right[t] {
			return fmt.Errorf("tiling: L and R must be disjoint (%q)", t)
		}
	}
	for t := range s.Right {
		if !declared[t] {
			return fmt.Errorf("tiling: right tile %q not declared", t)
		}
	}
	for p := range s.Horiz {
		if !declared[p[0]] || !declared[p[1]] {
			return fmt.Errorf("tiling: H mentions undeclared tile")
		}
	}
	for p := range s.Vert {
		if !declared[p[0]] || !declared[p[1]] {
			return fmt.Errorf("tiling: V mentions undeclared tile")
		}
	}
	return nil
}

// ProgramSource is the FIXED PWL program of the reduction, verbatim from
// Section 5 (in the head-first surface syntax; "_" are don't-care
// variables).
const ProgramSource = `
% rows that respect the horizontal constraints
row(Z,Z,X,X) :- tile(X).
row(X,U,Y,W) :- row(_,X,Y,Z), h(Z,W).
% pairs of vertically compatible rows
comp(X,X2) :- row(X,X,Y,Y), row(X2,X2,Y2,Y2), v(Y,Y2).
comp(Y,Y2) :- row(X,Y,_,Z), row(X2,Y2,_,Z2), comp(X,X2), v(Z,Z2).
% candidate tilings, grown row by row
ctiling(X,Y) :- row(_,X,Y,Z), start(Y), right(Z).
ctiling(Y,Z) :- ctiling(X,_), row(_,Y,Z,W), comp(X,Y), le(Z), right(W).
`

// QuerySource is the fixed Boolean CQ of the reduction.
const QuerySource = `? :- ctiling(X,Y), finish(Y).`

// Reduction is the output of the Theorem 5.1 construction.
type Reduction struct {
	Program *logic.Program
	DB      *storage.DB
	Query   *logic.CQ
}

// Reduce builds (D_T, Σ, q) for a tiling system.
func Reduce(s *System) (*Reduction, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	res, err := parser.Parse(ProgramSource)
	if err != nil {
		return nil, fmt.Errorf("tiling: fixed program: %w", err)
	}
	qres, err := parser.ParseInto(res.Program, QuerySource)
	if err != nil {
		return nil, fmt.Errorf("tiling: fixed query: %w", err)
	}
	prog := res.Program
	db := storage.NewDB()
	reg, st := prog.Reg, prog.Store
	tile := reg.Intern("tile", 1)
	le := reg.Intern("le", 1)
	right := reg.Intern("right", 1)
	h := reg.Intern("h", 2)
	v := reg.Intern("v", 2)
	start := reg.Intern("start", 1)
	finish := reg.Intern("finish", 1)
	for _, t := range s.Tiles {
		db.Insert(atom.New(tile, st.Const(t)))
	}
	for t := range s.Left {
		db.Insert(atom.New(le, st.Const(t)))
	}
	for t := range s.Right {
		db.Insert(atom.New(right, st.Const(t)))
	}
	for p := range s.Horiz {
		db.Insert(atom.New(h, st.Const(p[0]), st.Const(p[1])))
	}
	for p := range s.Vert {
		db.Insert(atom.New(v, st.Const(p[0]), st.Const(p[1])))
	}
	db.Insert(atom.New(start, st.Const(s.Start)))
	db.Insert(atom.New(finish, st.Const(s.Finish)))
	return &Reduction{Program: prog, DB: db, Query: qres.Queries[0]}, nil
}

// BruteForce searches for a tiling with at most maxW columns and maxH rows,
// returning the tiling (row-major, grid[y][x], grid[0] being the row that
// starts with the start tile) if one exists. It is the ground-truth oracle
// for the faithfulness experiments (E4); the problem is unbounded, so a
// negative answer only refutes tilings within the searched box.
func BruteForce(s *System, maxW, maxH int) ([][]string, bool) {
	if err := s.Validate(); err != nil {
		return nil, false
	}
	for w := 1; w <= maxW; w++ {
		rows := enumerateRows(s, w)
		var startRows []int
		for i, r := range rows {
			if r[0] == s.Start {
				startRows = append(startRows, i)
			}
		}
		if grid, ok := dfsGrid(s, rows, startRows, maxH); ok {
			return grid, true
		}
	}
	return nil, false
}

// dfsGrid searches for a stack of ≤ maxH vertically compatible rows whose
// first row is a start row and whose last row begins with the finish tile.
func dfsGrid(s *System, rows [][]string, startRows []int, maxH int) ([][]string, bool) {
	var path []int
	var found [][]string
	var rec func(cur, depth int) bool
	rec = func(cur, depth int) bool {
		path = append(path, cur)
		defer func() { path = path[:len(path)-1] }()
		if rows[cur][0] == s.Finish {
			found = make([][]string, len(path))
			for i, ri := range path {
				found[i] = append([]string(nil), rows[ri]...)
			}
			return true
		}
		if depth == maxH {
			return false
		}
		for j := range rows {
			if compatible(s, rows[cur], rows[j]) && rec(j, depth+1) {
				return true
			}
		}
		return false
	}
	for _, s0 := range startRows {
		if rec(s0, 1) {
			return found, true
		}
	}
	return nil, false
}

// enumerateRows lists all rows of width w that respect H, start in L
// (or equal the start/finish tile — see the package note) and end in R.
// Row r is represented left-to-right; r[0] is the leftmost tile.
func enumerateRows(s *System, w int) [][]string {
	var out [][]string
	row := make([]string, w)
	var rec func(i int)
	rec = func(i int) {
		if i == w {
			if s.Right[row[w-1]] {
				out = append(out, append([]string(nil), row...))
			}
			return
		}
		for _, t := range s.Tiles {
			if i == 0 {
				// Leftmost column: must be in L.
				if !s.Left[t] {
					continue
				}
			} else if !s.Horiz[[2]string{row[i-1], t}] {
				continue
			}
			row[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// compatible reports whether row b can be placed directly above row a
// (every column satisfies V(a[i], b[i])).
func compatible(s *System, a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !s.Vert[[2]string{a[i], b[i]}] {
			return false
		}
	}
	return true
}
