package resolution

import (
	"math/rand"
	"testing"

	"repro/internal/atom"
	"repro/internal/schema"
	"repro/internal/term"
)

// TestCanonicalRenamingInvariance is the key property of the memoization
// layer: applying an arbitrary injective variable renaming to a state must
// not change its canonical key, and non-injective changes (merging
// variables) must change it.
func TestCanonicalRenamingInvariance(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	preds := []schema.PredID{
		reg.Intern("p", 2),
		reg.Intern("q", 3),
		reg.Intern("r", 1),
	}
	consts := []term.Term{st.Const("c1"), st.Const("c2")}
	rng := rand.New(rand.NewSource(23))

	randState := func() State {
		nAtoms := 1 + rng.Intn(4)
		nVars := 1 + rng.Intn(5)
		vars := make([]term.Term, nVars)
		for i := range vars {
			vars[i] = st.Var("A" + string(rune('a'+i)) + "_rand")
		}
		var atoms []atom.Atom
		for i := 0; i < nAtoms; i++ {
			p := preds[rng.Intn(len(preds))]
			ar := reg.Arity(p)
			args := make([]term.Term, ar)
			for j := range args {
				if rng.Intn(4) == 0 {
					args[j] = consts[rng.Intn(len(consts))]
				} else {
					args[j] = vars[rng.Intn(len(vars))]
				}
			}
			atoms = append(atoms, atom.New(p, args...))
		}
		return NewState(atoms)
	}

	for trial := 0; trial < 300; trial++ {
		s := randState()
		_, k1 := Canonical(s, st)

		// Injective renaming: map each variable to a fresh unique one.
		// Renaming alone never changes the key (the initial structural
		// sort ignores variable identity and the greedy ranks follow it).
		vs := atom.VarSet(s.Atoms)
		ren := make(map[term.Term]term.Term)
		i := 0
		for v := range vs {
			ren[v] = st.Var("Z" + string(rune('0'+i%10)) + "_" + string(rune('a'+trial%26)) + "fresh")
			i++
		}
		s2 := State{Atoms: ApplyFlat(ren, s.Atoms)}
		_, k2 := Canonical(s2, st)
		if k1 != k2 {
			t.Fatalf("trial %d: canonical key changed under injective renaming", trial)
		}

		// Atom-order shuffles are additionally guaranteed stable when no
		// two atoms tie structurally (greedy tie-breaking is the one
		// documented source of imperfection — it costs re-exploration in
		// the memo, never soundness).
		keys := map[string]bool{}
		distinct := true
		for _, a := range s.Atoms {
			k := structuralKey(a)
			if keys[k] {
				distinct = false
				break
			}
			keys[k] = true
		}
		if distinct {
			s3 := State{Atoms: append([]atom.Atom(nil), s2.Atoms...)}
			rng.Shuffle(len(s3.Atoms), func(a, b int) { s3.Atoms[a], s3.Atoms[b] = s3.Atoms[b], s3.Atoms[a] })
			_, k3 := Canonical(s3, st)
			if k1 != k3 {
				t.Fatalf("trial %d: key changed under shuffle despite distinct structural keys", trial)
			}
		}
	}
}

// TestCanonicalDistinguishesMerges checks that identifying two distinct
// variables (when they both occur) changes the canonical key.
func TestCanonicalDistinguishesMerges(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	p := reg.Intern("mp", 2)
	x, y := st.Var("MX"), st.Var("MY")
	s := NewState([]atom.Atom{atom.New(p, x, y)})
	_, k1 := Canonical(s, st)
	merged := State{Atoms: ApplyFlat(map[term.Term]term.Term{y: x}, s.Atoms)}
	_, k2 := Canonical(merged, st)
	if k1 == k2 {
		t.Fatalf("merging variables should change the canonical key")
	}
}

// TestApplyFlatNoChains guards against the chain-following bug: a renaming
// whose target names occur in the input must be applied in one step.
func TestApplyFlatNoChains(t *testing.T) {
	st := term.NewStore()
	reg := schema.NewRegistry()
	p := reg.Intern("fp", 2)
	x, v0, v1 := st.Var("FX"), st.Var("v0"), st.Var("v1")
	// x -> v0, v0 -> v1: x and v0 must stay DISTINCT after renaming.
	in := []atom.Atom{atom.New(p, x, v0)}
	out := ApplyFlat(map[term.Term]term.Term{x: v0, v0: v1}, in)
	if out[0].Args[0] != v0 || out[0].Args[1] != v1 {
		t.Fatalf("flat application broken: got %v,%v", out[0].Args[0], out[0].Args[1])
	}
	if out[0].Args[0] == out[0].Args[1] {
		t.Fatalf("chain following conflated distinct variables")
	}
}
