// Package resolution implements the building blocks of the paper's proof
// trees (Section 4.1): chunk-based resolution (Definition 4.3), query
// specialization (Definition 4.5), and query decomposition (Definition
// 4.4), together with the canonical renaming of CQ states that the
// space-bounded algorithms of Section 4.3 rely on ("we should reuse
// variables that have been lost").
//
// Throughout this package, CQ states follow the convention of the §4.3
// algorithm: output variables have already been instantiated with the
// candidate constants c̄, so every remaining variable is existential and
// constants are rigid. A "shared" variable of a subset S of a query is one
// that also occurs outside S (Definition of chunk unifier, §4.1).
package resolution

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// State is a CQ state of the §4.3 algorithm: a set of atoms over constants
// and variables. The output tuple is implicit (already instantiated), so a
// State is just the atom set, kept deduplicated and canonically renamed.
type State struct {
	Atoms []atom.Atom
}

// NewState builds a state from atoms, deduplicating identical atoms.
func NewState(atoms []atom.Atom) State {
	return State{Atoms: dedup(atoms)}
}

func dedup(atoms []atom.Atom) []atom.Atom {
	var out []atom.Atom
	for _, a := range atoms {
		dup := false
		for _, b := range out {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// Size is the number of atoms — the node-width contribution |λ(v)| of this
// state (§4.2).
func (s State) Size() int { return len(s.Atoms) }

// Empty reports whether every atom has been discharged.
func (s State) Empty() bool { return len(s.Atoms) == 0 }

// Chunk is a most general chunk unifier (MGCU) of a state with a TGD
// (Definition of chunk unifier, §4.1), specialized to single-head TGDs:
// S1 is the subset of state atoms resolved together against the head.
type Chunk struct {
	// S1 holds indices into the state's atom slice.
	S1 []int
	// Gamma is the most general unifier of the chunk with the head.
	Gamma atom.Subst
}

// MGCUs enumerates the most general chunk unifiers of the state with the
// (variable-renamed, single-head) TGD. For each non-empty subset S1 of
// state atoms sharing the head's predicate (at most maxChunk atoms;
// maxChunk ≤ 0 means unlimited), the candidate unifier γ must:
//
//	(1) map no existential variable of σ to a constant, and
//	(2) identify an existential variable only with non-shared variables
//	    of S1.
//
// Full subset enumeration is exponential in the number of same-predicate
// atoms; callers cap it. Size-1 chunks subsume larger ones for full TGDs
// (resolving one atom is more general, and the untouched copies discharge
// independently); multi-atom chunks matter for existential heads, where
// condition (2) forces the atoms sharing the existential's image to be
// resolved together — those chunks involve atoms overlapping on the
// existential position, and size 2 covers the pairwise interactions.
func MGCUs(s State, tgd *logic.TGD, maxChunk int) []Chunk {
	if len(tgd.Head) != 1 {
		panic("resolution: MGCUs requires single-head TGDs (apply analysis.SingleHead)")
	}
	head := tgd.Head[0]
	var cand []int
	for i, a := range s.Atoms {
		if a.Pred == head.Pred {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	if maxChunk <= 0 || maxChunk > len(cand) {
		maxChunk = len(cand)
	}
	ex := tgd.Existentials()
	var out []Chunk
	// Enumerate subsets of cand of size ≤ maxChunk incrementally, pruning
	// branches whose partial unifier already fails.
	var rec func(start int, s1 []int, g atom.Subst)
	rec = func(start int, s1 []int, g atom.Subst) {
		if len(s1) > 0 {
			if chunkConditions(s, s1, g, ex, tgd) {
				out = append(out, Chunk{S1: append([]int(nil), s1...), Gamma: g})
			}
		}
		if len(s1) == maxChunk {
			return
		}
		for bit := start; bit < len(cand); bit++ {
			i := cand[bit]
			g2 := g.Clone()
			if !atom.UnifyAtoms(g2, s.Atoms[i], head) {
				continue
			}
			rec(bit+1, append(s1, i), g2)
		}
	}
	rec(0, nil, atom.NewSubst())
	return out
}

// chunkConditions checks conditions (1) and (2) on the unifier.
func chunkConditions(s State, s1 []int, g atom.Subst, ex map[term.Term]bool, tgd *logic.TGD) bool {
	if len(ex) == 0 {
		return true
	}
	inS1 := make(map[int]bool, len(s1))
	for _, i := range s1 {
		inS1[i] = true
	}
	// Variables of S1 and of the rest of the state.
	varsS1 := make(map[term.Term]bool)
	varsRest := make(map[term.Term]bool)
	for i, a := range s.Atoms {
		for _, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			if inS1[i] {
				varsS1[t] = true
			} else {
				varsRest[t] = true
			}
		}
	}
	shared := func(y term.Term) bool { return varsRest[y] }

	for x := range ex {
		rep := g.Apply(x)
		if rep.IsConst() {
			return false // condition (1)
		}
		// Condition (2): every query variable identified with x must occur
		// in S1 and be non-shared; every TGD variable identified with x
		// must be x itself (an existential cannot merge with a frontier
		// variable, which never occurs in S1).
		for y := range varsS1 {
			if g.Apply(y) == rep && shared(y) {
				return false
			}
		}
		for y := range varsRest {
			if g.Apply(y) == rep {
				return false // identified with a variable outside S1
			}
		}
		for y := range tgd.BodyVars() {
			if g.Apply(y) == rep {
				return false // identified with a frontier/body variable
			}
		}
	}
	return true
}

// Resolve applies a chunk unifier, producing the σ-resolvent state
// (Definition 4.3): γ((atoms(q) \ S1) ∪ body(σ)).
func Resolve(s State, tgd *logic.TGD, c Chunk) State {
	inS1 := make(map[int]bool, len(c.S1))
	for _, i := range c.S1 {
		inS1[i] = true
	}
	var atoms []atom.Atom
	for i, a := range s.Atoms {
		if !inS1[i] {
			atoms = append(atoms, c.Gamma.ApplyAtom(a))
		}
	}
	for _, b := range tgd.Body {
		atoms = append(atoms, c.Gamma.ApplyAtom(b))
	}
	return NewState(atoms)
}

// Specializations enumerates the useful atom-merging specializations of the
// state (Definition 4.5 instances): unify two atoms with the same predicate
// so the state shrinks. Each result applies the MGU of one unifiable pair.
// (Bindings of variables to database constants — the other specialization
// the §4.3 algorithm guesses — happen during Discharge, where they are
// driven by index lookups instead of blind guessing.)
func Specializations(s State) []State {
	var out []State
	for i := 0; i < len(s.Atoms); i++ {
		for j := i + 1; j < len(s.Atoms); j++ {
			if s.Atoms[i].Pred != s.Atoms[j].Pred {
				continue
			}
			g := atom.NewSubst()
			if !atom.UnifyAtoms(g, s.Atoms[i], s.Atoms[j]) {
				continue
			}
			out = append(out, NewState(g.ApplyAtoms(s.Atoms)))
		}
	}
	return out
}

// Decompose splits the state into its variable-connected components
// (Definition 4.4 with the finest valid split): two atoms must stay
// together iff they share a variable (constants — frozen output values —
// may be separated). The components can be processed independently, which
// is what the alternating algorithm for WARD does.
func Decompose(s State) []State {
	n := len(s.Atoms)
	if n <= 1 {
		return []State{s}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byVar := make(map[term.Term]int)
	for i, a := range s.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				if j, ok := byVar[t]; ok {
					union(i, j)
				} else {
					byVar[t] = i
				}
			}
		}
	}
	groups := make(map[int][]atom.Atom)
	var roots []int
	for i, a := range s.Atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([]State, 0, len(roots))
	for _, r := range roots {
		out = append(out, State{Atoms: groups[r]})
	}
	return out
}

// Canonical renames the variables of the state into a fixed pool (v0, v1,
// ...) by a deterministic traversal and returns both the renamed state and
// its string key. Isomorphic states (equal up to variable renaming and atom
// order) receive equal keys for the common case; the key is used for
// memoization, where an occasional imperfect canonicalization only costs a
// re-exploration, never soundness.
func Canonical(s State, st *term.Store) (State, string) {
	atoms := append([]atom.Atom(nil), s.Atoms...)
	// Initial deterministic order ignoring variable identity.
	sort.SliceStable(atoms, func(i, j int) bool {
		return structuralKey(atoms[i]) < structuralKey(atoms[j])
	})
	// Greedy canonical labeling: repeatedly pick the unplaced atom with the
	// smallest signature under current ranks, then rank its fresh vars.
	rank := make(map[term.Term]int)
	placed := make([]bool, len(atoms))
	ordered := make([]atom.Atom, 0, len(atoms))
	for len(ordered) < len(atoms) {
		best := -1
		var bestSig string
		for i, a := range atoms {
			if placed[i] {
				continue
			}
			sig := signature(a, rank)
			if best == -1 || sig < bestSig {
				best, bestSig = i, sig
			}
		}
		placed[best] = true
		a := atoms[best]
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := rank[t]; !ok {
					rank[t] = len(rank)
				}
			}
		}
		ordered = append(ordered, a)
	}
	// Apply the renaming FLAT (single step): the target names v0, v1, ...
	// may themselves occur in the state (states are re-canonicalized), so
	// chain-following substitution would conflate distinct variables.
	sub := make(map[term.Term]term.Term, len(rank))
	for v, r := range rank {
		sub[v] = st.Var("v" + strconv.Itoa(r))
	}
	renamed := ApplyFlat(sub, ordered)
	var b strings.Builder
	for _, a := range renamed {
		b.WriteString(structuralKeyFull(a))
		b.WriteByte(';')
	}
	return State{Atoms: renamed}, b.String()
}

// ApplyFlat applies a term-to-term mapping in a single step (no chain
// following), returning fresh atoms. Use for renamings whose target names
// may occur in the input.
func ApplyFlat(m map[term.Term]term.Term, atoms []atom.Atom) []atom.Atom {
	out := make([]atom.Atom, len(atoms))
	for i, a := range atoms {
		args := make([]term.Term, len(a.Args))
		for j, t := range a.Args {
			if r, ok := m[t]; ok {
				args[j] = r
			} else {
				args[j] = t
			}
		}
		out[i] = atom.Atom{Pred: a.Pred, Args: args}
	}
	return out
}

// structuralKey identifies an atom ignoring variable identity.
func structuralKey(a atom.Atom) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(uint64(a.Pred), 36))
	b.WriteByte('(')
	for _, t := range a.Args {
		if t.IsVar() {
			b.WriteByte('V')
		} else {
			b.WriteByte(byte('c'))
			b.WriteString(strconv.FormatUint(t.Key(), 36))
		}
		b.WriteByte(',')
	}
	b.WriteByte(')')
	return b.String()
}

// signature identifies an atom under a partial variable ranking.
func signature(a atom.Atom, rank map[term.Term]int) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(uint64(a.Pred), 36))
	b.WriteByte('(')
	for _, t := range a.Args {
		if t.IsVar() {
			if r, ok := rank[t]; ok {
				b.WriteByte('r')
				b.WriteString(strconv.Itoa(r))
			} else {
				b.WriteByte('V')
			}
		} else {
			b.WriteByte('c')
			b.WriteString(strconv.FormatUint(t.Key(), 36))
		}
		b.WriteByte(',')
	}
	b.WriteByte(')')
	return b.String()
}

// structuralKeyFull identifies an atom including variable identity (after
// canonical renaming all variables have stable IDs).
func structuralKeyFull(a atom.Atom) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(uint64(a.Pred), 36))
	b.WriteByte('(')
	for _, t := range a.Args {
		b.WriteString(strconv.FormatUint(t.Key(), 36))
		b.WriteByte(',')
	}
	b.WriteByte(')')
	return b.String()
}
