package resolution

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/parser"
	"repro/internal/term"
)

func TestMGCUBasicResolution(t *testing.T) {
	// Query atom t(a, X); TGD t(U,V) :- e(U,V). One chunk unifier.
	r := parser.MustParse(`
t(U,V) :- e(U,V).
?(X) :- t(a,X).
`)
	tgd := r.Program.TGDs[0]
	st := NewState(r.Queries[0].Atoms)
	chunks := MGCUs(st, tgd, 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
	res := Resolve(st, tgd, chunks[0])
	if res.Size() != 1 {
		t.Fatalf("resolvent size = %d, want 1", res.Size())
	}
	e, _ := r.Program.Reg.Lookup("e")
	if res.Atoms[0].Pred != e {
		t.Fatalf("resolvent should be over e")
	}
	// The constant a must survive into the resolvent.
	if !res.Atoms[0].Args[0].IsConst() {
		t.Fatalf("constant lost in resolution")
	}
}

func TestMGCUNoPredicateMatch(t *testing.T) {
	r := parser.MustParse(`
t(U,V) :- e(U,V).
?(X) :- s(a,X).
`)
	st := NewState(r.Queries[0].Atoms)
	if got := MGCUs(st, r.Program.TGDs[0], 0); got != nil {
		t.Fatalf("no chunk unifier should exist: %v", got)
	}
}

// The paper's unsoundness example (§4.1): Q(x) ← R(x,y), S(y) with TGD
// P(x') → ∃y' R(x',y'): resolving R(x,y) alone would lose the shared
// variable y; the chunk conditions must reject it.
func TestChunkConditionRejectsSharedExistential(t *testing.T) {
	r := parser.MustParse(`
r(U,W) :- p(U).
?(X) :- r(X,Y), s(Y).
`)
	tgd := r.Program.TGDs[0] // r(U,W) :- p(U), W existential
	if len(tgd.Existentials()) != 1 {
		t.Fatalf("W must be existential")
	}
	st := NewState(r.Queries[0].Atoms)
	chunks := MGCUs(st, tgd, 0)
	if len(chunks) != 0 {
		t.Fatalf("unsound resolution step admitted: %d chunks", len(chunks))
	}
}

// The paper's companion example: with TGD P(x') → ∃y' R(x',y'), S(y')
// (two-atom head — after single-head normalization both atoms route
// through an aux predicate) the whole chunk R(x,y), S(y) can be resolved.
// Here we emulate with a single-head equivalent: both query atoms unify
// against the same head atom.
func TestChunkUnifierMergesAtoms(t *testing.T) {
	r := parser.MustParse(`
r(U,W) :- p(U).
?() :- r(a,Y), r(a,Z).
`)
	// Wait: ?() with no outputs — Y, Z both non-shared. Both atoms can be
	// resolved either separately or as one chunk.
	st := NewState(r.Queries[0].Atoms)
	tgd := r.Program.TGDs[0]
	chunks := MGCUs(st, tgd, 0)
	// Subsets: {0}, {1}, {0,1} — all should satisfy the chunk conditions
	// (Y and Z are non-shared within their respective S1 choices... except
	// when resolving one atom alone, the other atom does not mention Y).
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	for _, ch := range chunks {
		res := Resolve(st, tgd, ch)
		if res.Size() > 2 {
			t.Fatalf("resolvent too large: %d", res.Size())
		}
	}
}

func TestChunkConditionRejectsConstantExistential(t *testing.T) {
	r := parser.MustParse(`
r(U,W) :- p(U).
?() :- r(X,b).
`)
	st := NewState(r.Queries[0].Atoms)
	chunks := MGCUs(st, r.Program.TGDs[0], 0)
	if len(chunks) != 0 {
		t.Fatalf("existential unified with constant must be rejected")
	}
}

func TestMGCUPanicsOnMultiHead(t *testing.T) {
	r := parser.MustParse(`
a(X), b(X) :- c(X).
?() :- a(Y).
`)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on multi-head TGD")
		}
	}()
	MGCUs(NewState(r.Queries[0].Atoms), r.Program.TGDs[0], 0)
}

func TestSpecializationsMergePairs(t *testing.T) {
	r := parser.MustParse(`?() :- t(X,a), t(b,Y), s(X).`)
	st := NewState(r.Queries[0].Atoms)
	sps := Specializations(st)
	if len(sps) != 1 {
		t.Fatalf("specializations = %d, want 1 (the t-pair)", len(sps))
	}
	if sps[0].Size() != 2 {
		t.Fatalf("merged state size = %d, want 2", sps[0].Size())
	}
}

func TestSpecializationsRespectConstants(t *testing.T) {
	r := parser.MustParse(`?() :- t(a,X), t(b,X).`)
	st := NewState(r.Queries[0].Atoms)
	if sps := Specializations(st); len(sps) != 0 {
		t.Fatalf("clashing constants must not merge: %d", len(sps))
	}
}

func TestDecomposeComponents(t *testing.T) {
	r := parser.MustParse(`?() :- e(X,Y), f(Y), g(Z), h(a).`)
	st := NewState(r.Queries[0].Atoms)
	comps := Decompose(st)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 ({e,f}, {g}, {h})", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[c.Size()]++
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("component sizes wrong: %v", sizes)
	}
}

func TestDecomposeSingleton(t *testing.T) {
	r := parser.MustParse(`?() :- e(X,Y).`)
	st := NewState(r.Queries[0].Atoms)
	if comps := Decompose(st); len(comps) != 1 {
		t.Fatalf("singleton should not split")
	}
}

func TestCanonicalIsomorphicStates(t *testing.T) {
	r := parser.MustParse(`
?() :- e(X,Y), f(Y).
?() :- e(U,V), f(V).
?() :- e(U,V), f(U).
`)
	st := r.Program.Store
	_, k1 := Canonical(NewState(r.Queries[0].Atoms), st)
	_, k2 := Canonical(NewState(r.Queries[1].Atoms), st)
	_, k3 := Canonical(NewState(r.Queries[2].Atoms), st)
	if k1 != k2 {
		t.Fatalf("isomorphic states got different keys:\n%q\n%q", k1, k2)
	}
	if k1 == k3 {
		t.Fatalf("non-isomorphic states share a key: %q", k1)
	}
}

func TestCanonicalAtomOrderInvariance(t *testing.T) {
	r := parser.MustParse(`
?() :- f(Y), e(X,Y).
?() :- e(X,Y), f(Y).
`)
	st := r.Program.Store
	_, k1 := Canonical(NewState(r.Queries[0].Atoms), st)
	_, k2 := Canonical(NewState(r.Queries[1].Atoms), st)
	if k1 != k2 {
		t.Fatalf("atom order changed the canonical key")
	}
}

func TestCanonicalConstantsRigid(t *testing.T) {
	r := parser.MustParse(`
?() :- e(a,X).
?() :- e(b,X).
`)
	st := r.Program.Store
	_, k1 := Canonical(NewState(r.Queries[0].Atoms), st)
	_, k2 := Canonical(NewState(r.Queries[1].Atoms), st)
	if k1 == k2 {
		t.Fatalf("different constants must yield different keys")
	}
}

func TestStateDedup(t *testing.T) {
	r := parser.MustParse(`?() :- e(X,Y), e(X,Y).`)
	st := NewState(r.Queries[0].Atoms)
	if st.Size() != 1 {
		t.Fatalf("duplicate atoms must collapse: %d", st.Size())
	}
}

func TestResolveRemovesWholeChunk(t *testing.T) {
	// Both query atoms resolve against the head in one chunk; resolvent is
	// just the body.
	r := parser.MustParse(`
t(U,V) :- e(U,V).
?() :- t(X,Y), t(X,Y).
`)
	st := NewState(r.Queries[0].Atoms) // dedups to 1 atom
	chunks := MGCUs(st, r.Program.TGDs[0], 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	res := Resolve(st, r.Program.TGDs[0], chunks[0])
	if res.Size() != 1 {
		t.Fatalf("resolvent = %d atoms", res.Size())
	}
}

func TestSubstApplicationInResolve(t *testing.T) {
	// Resolving t(a,X),s(X) via t(U,V) :- e(U,V) must propagate V=X
	// binding into the kept atom s(X)? No: γ maps U→a, V~X; the kept atom
	// s(X) is rewritten by γ, staying s(X) or s(V) — either way connected
	// to the new body atom e(a, ·).
	r := parser.MustParse(`
t(U,V) :- e(U,V).
?() :- t(a,X), s(X).
`)
	st := NewState(r.Queries[0].Atoms)
	chunks := MGCUs(st, r.Program.TGDs[0], 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	res := Resolve(st, r.Program.TGDs[0], chunks[0])
	if res.Size() != 2 {
		t.Fatalf("resolvent size = %d", res.Size())
	}
	// The e-atom and the s-atom must share a variable.
	vs0 := atom.VarSet(res.Atoms[:1])
	shared := false
	for _, a := range res.Atoms[1:] {
		for _, x := range a.Args {
			if x.IsVar() && vs0[x] {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatalf("resolution lost the connection between atoms: %v", res.Atoms)
	}
	_ = term.Term{}
}
