package term

import (
	"fmt"
	"sync"
	"testing"
)

// Property suite for concurrent interning (run with -race): parallel
// Const/Var across shards yield stable unique IDs, and lookup-by-ID (Name)
// is safe while interning is still in flight.

// TestConcurrentConstVarStableIDs: many goroutines intern overlapping
// constant and variable name sets concurrently; afterwards every name has
// exactly one ID, the ID spaces are dense, and all workers observed the
// same bindings.
func TestConcurrentConstVarStableIDs(t *testing.T) {
	const (
		workers = 8
		names   = 1500
	)
	s := NewStore()
	consts := make([]map[string]uint32, workers)
	vars := make([]map[string]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mc := make(map[string]uint32, names)
			mv := make(map[string]uint32, names)
			for i := 0; i < names; i++ {
				// Distinct walk order per worker maximizes first-intern races.
				k := (i*13 + w*names/workers) % names
				cn, vn := fmt.Sprintf("c%d", k), fmt.Sprintf("V%d", k)
				ct, vt := s.Const(cn), s.Var(vn)
				if !ct.IsConst() || !vt.IsVar() {
					t.Errorf("worker %d: wrong kinds %v %v", w, ct, vt)
					return
				}
				if prev, ok := mc[cn]; ok && prev != ct.ID {
					t.Errorf("worker %d: const %q changed ID %d -> %d", w, cn, prev, ct.ID)
					return
				}
				if prev, ok := mv[vn]; ok && prev != vt.ID {
					t.Errorf("worker %d: var %q changed ID %d -> %d", w, vn, prev, vt.ID)
					return
				}
				mc[cn], mv[vn] = ct.ID, vt.ID
				// Lookup-by-ID must serve the just-interned name immediately,
				// concurrently with everyone else's interning.
				if got := s.Name(ct); got != cn {
					t.Errorf("worker %d: Name(const %d) = %q, want %q", w, ct.ID, got, cn)
					return
				}
				if got := s.Name(vt); got != vn {
					t.Errorf("worker %d: Name(var %d) = %q, want %q", w, vt.ID, got, vn)
					return
				}
			}
			consts[w], vars[w] = mc, mv
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if s.NumConsts() != names || s.NumVars() != names {
		t.Fatalf("interned %d consts, %d vars; want %d each", s.NumConsts(), s.NumVars(), names)
	}
	for w := 1; w < workers; w++ {
		for n, id := range consts[w] {
			if consts[0][n] != id {
				t.Fatalf("workers disagree on const %q: %d vs %d", n, consts[0][n], id)
			}
		}
		for n, id := range vars[w] {
			if vars[0][n] != id {
				t.Fatalf("workers disagree on var %q: %d vs %d", n, vars[0][n], id)
			}
		}
	}
	seen := make(map[uint32]bool, names)
	for n, id := range consts[0] {
		if seen[id] {
			t.Fatalf("const ID %d assigned twice", id)
		}
		seen[id] = true
		if ct, ok := s.HasConst(n); !ok || ct.ID != id {
			t.Fatalf("HasConst(%q) = (%v,%v), want ID %d", n, ct, ok, id)
		}
	}
}

// TestConcurrentFreshness: FreshVar and FreshNull issued from many
// goroutines never collide — with each other or with plain interning of
// clashing names.
func TestConcurrentFreshness(t *testing.T) {
	const (
		workers = 8
		perW    = 300
	)
	s := NewStore()
	fresh := make([][]Term, workers)
	nulls := make([][]Term, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				fresh[w] = append(fresh[w], s.FreshVar("x"))
				nulls[w] = append(nulls[w], s.FreshNull())
				// Interleave adversarial interning of the same prefix space.
				s.Var(fmt.Sprintf("x%d", i*workers+w))
			}
		}(w)
	}
	wg.Wait()
	seenV := make(map[uint32]bool)
	seenN := make(map[uint32]bool)
	for w := 0; w < workers; w++ {
		for _, v := range fresh[w] {
			if seenV[v.ID] {
				t.Fatalf("FreshVar returned variable ID %d twice", v.ID)
			}
			seenV[v.ID] = true
		}
		for _, n := range nulls[w] {
			if seenN[n.ID] {
				t.Fatalf("FreshNull returned label %d twice", n.ID)
			}
			seenN[n.ID] = true
		}
	}
	if s.NullCount() != workers*perW {
		t.Fatalf("NullCount = %d, want %d", s.NullCount(), workers*perW)
	}
}

// TestCloneDuringIntern: cloning the store while interning is in flight
// yields a consistent prefix — every ID the clone knows renders to the
// name that interned it — and the two stores diverge independently
// afterwards.
func TestCloneDuringIntern(t *testing.T) {
	s := NewStore()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Const(fmt.Sprintf("c%d", i))
		}
	}()
	for k := 0; k < 30; k++ {
		c := s.Clone()
		n := c.NumConsts()
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("c%d", i)
			if got := c.Name(MkConst(uint32(i))); got != want {
				t.Fatalf("clone %d: Name(%d) = %q, want %q", k, i, got, want)
			}
		}
		// Divergence: the clone's new interns stay private.
		priv := c.Const("only-in-clone")
		if _, ok := s.HasConst("only-in-clone"); ok && s.NumConsts() <= int(priv.ID) {
			t.Fatal("original observed clone-private constant")
		}
	}
	close(stop)
	wg.Wait()
}
