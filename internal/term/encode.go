package term

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Checkpoint encoding of a Store. The format is a positional dump of
// both name arenas:
//
//	u32 nConsts | nConsts × (u32 len | bytes)
//	u32 nVars   | nVars   × (u32 len | bytes)
//	u32 nextNull
//
// Decoding re-interns the names in ID order into a fresh Store, which
// reproduces the exact ID assignment (IDs are dense and sequential in
// first-intern order), so term IDs embedded in a checkpointed instance
// segment stay valid against the decoded store.
//
// Encoding is safe concurrently with interning: the arena walk covers
// the prefix published at call time, and nothing durable references
// names interned past it (facts only hold terms interned before the
// writer lock was taken).

// AppendEncoded serializes the store onto buf.
func (s *Store) AppendEncoded(buf []byte) []byte {
	buf = appendNames(buf, s.consts.arena.Len(), s.consts.arena.Get)
	buf = appendNames(buf, s.vars.arena.Len(), s.vars.arena.Get)
	return binary.LittleEndian.AppendUint32(buf, s.nextNull.Load())
}

func appendNames(buf []byte, n int, get func(uint32) (string, bool)) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		name, _ := get(uint32(i))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
	}
	return buf
}

// DecodeStore rebuilds a Store from AppendEncoded output.
func DecodeStore(data []byte) (*Store, error) {
	s := NewStore()
	data, err := decodeNames(data, func(name string) uint32 {
		id, _ := s.consts.intern(name)
		return id
	})
	if err != nil {
		return nil, fmt.Errorf("term: decode store consts: %w", err)
	}
	data, err = decodeNames(data, func(name string) uint32 {
		id, _ := s.vars.intern(name)
		return id
	})
	if err != nil {
		return nil, fmt.Errorf("term: decode store vars: %w", err)
	}
	if len(data) != 4 {
		return nil, errors.New("term: decode store: bad trailer")
	}
	s.nextNull.Store(binary.LittleEndian.Uint32(data))
	return s, nil
}

func decodeNames(data []byte, intern func(string) uint32) ([]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("short header")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, errors.New("short name length")
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if l < 0 || l > len(data) {
			return nil, errors.New("short name")
		}
		if id := intern(string(data[:l])); id != uint32(i) {
			return nil, fmt.Errorf("non-sequential ID %d for entry %d (duplicate name?)", id, i)
		}
		data = data[l:]
	}
	return data, nil
}
