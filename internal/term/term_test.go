package term

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Const, "const"},
		{Var, "var"},
		{Null, "null"},
		{Kind(9), "kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestConstInterning(t *testing.T) {
	s := NewStore()
	a := s.Const("alice")
	b := s.Const("bob")
	a2 := s.Const("alice")
	if a != a2 {
		t.Errorf("interning not stable: %v vs %v", a, a2)
	}
	if a == b {
		t.Errorf("distinct names interned to same term: %v", a)
	}
	if !a.IsConst() || a.IsVar() || a.IsNull() {
		t.Errorf("kind predicates wrong for %v", a)
	}
	if s.NumConsts() != 2 {
		t.Errorf("NumConsts = %d, want 2", s.NumConsts())
	}
}

func TestVarInterning(t *testing.T) {
	s := NewStore()
	x := s.Var("X")
	y := s.Var("Y")
	x2 := s.Var("X")
	if x != x2 || x == y {
		t.Errorf("var interning broken: %v %v %v", x, y, x2)
	}
	if !x.IsVar() {
		t.Errorf("IsVar false for %v", x)
	}
	if s.NumVars() != 2 {
		t.Errorf("NumVars = %d, want 2", s.NumVars())
	}
}

func TestConstVarDisjoint(t *testing.T) {
	s := NewStore()
	c := s.Const("x")
	v := s.Var("x")
	if c == v {
		t.Fatalf("constant and variable with same name must be distinct terms")
	}
	if c.Key() == v.Key() {
		t.Fatalf("Key must separate kinds: %d", c.Key())
	}
}

func TestFreshNull(t *testing.T) {
	s := NewStore()
	n1 := s.FreshNull()
	n2 := s.FreshNull()
	if n1 == n2 {
		t.Fatalf("FreshNull returned duplicate %v", n1)
	}
	if !n1.IsNull() {
		t.Fatalf("FreshNull kind = %v", n1.Kind)
	}
	if s.NullCount() != 2 {
		t.Fatalf("NullCount = %d, want 2", s.NullCount())
	}
}

func TestFreshVarAvoidsClash(t *testing.T) {
	s := NewStore()
	s.Var("v0")
	s.Var("v1")
	f := s.FreshVar("v")
	if name := s.Name(f); name == "v0" || name == "v1" {
		t.Fatalf("FreshVar returned clashing name %q", name)
	}
	f2 := s.FreshVar("v")
	if f == f2 {
		t.Fatalf("consecutive FreshVar calls returned same var")
	}
}

func TestName(t *testing.T) {
	s := NewStore()
	a := s.Const("alice")
	x := s.Var("X")
	n := s.FreshNull()
	if got := s.Name(a); got != "alice" {
		t.Errorf("Name(const) = %q", got)
	}
	if got := s.Name(x); got != "X" {
		t.Errorf("Name(var) = %q", got)
	}
	if got := s.Name(n); got != "_:n0" {
		t.Errorf("Name(null) = %q", got)
	}
	// Foreign IDs must not panic.
	if got := s.Name(MkConst(999)); got == "" {
		t.Errorf("Name(foreign const) empty")
	}
	if got := s.Name(MkVar(999)); got == "" {
		t.Errorf("Name(foreign var) empty")
	}
	if got := s.Name(Term{Kind: Kind(7), ID: 1}); got == "" {
		t.Errorf("Name(bad kind) empty")
	}
}

func TestNames(t *testing.T) {
	s := NewStore()
	ts := []Term{s.Const("a"), s.Var("X")}
	got := s.Names(ts)
	if len(got) != 2 || got[0] != "a" || got[1] != "X" {
		t.Fatalf("Names = %v", got)
	}
}

func TestHasConst(t *testing.T) {
	s := NewStore()
	a := s.Const("a")
	got, ok := s.HasConst("a")
	if !ok || got != a {
		t.Fatalf("HasConst(a) = %v,%v", got, ok)
	}
	if _, ok := s.HasConst("zzz"); ok {
		t.Fatalf("HasConst(zzz) should be false")
	}
}

// Property: interning is injective — distinct names yield distinct IDs, and
// Name is a left inverse of Const/Var.
func TestInterningRoundTrip(t *testing.T) {
	s := NewStore()
	f := func(name string) bool {
		c := s.Const(name)
		v := s.Var(name)
		return s.Name(c) == name && s.Name(v) == name && c.Kind == Const && v.Kind == Var
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective over kind+ID.
func TestKeyInjective(t *testing.T) {
	f := func(k1, k2 uint8, id1, id2 uint32) bool {
		a := Term{Kind: Kind(k1 % 3), ID: id1}
		b := Term{Kind: Kind(k2 % 3), ID: id2}
		if a == b {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
