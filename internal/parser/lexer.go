// Package parser implements the surface syntax of the reproduction: a
// Vadalog-style rule language for TGDs, facts, and conjunctive queries.
//
// Grammar (head-first rules, as in Vadalog):
//
//	program   := { statement }
//	statement := rule | fact | query
//	rule      := head ":-" body "."
//	head      := atom { "," atom }
//	body      := literal { "," literal }
//	literal   := atom | ("not" | "!") atom
//	query     := "?" "(" terms? ")" ":-" body "."
//	fact      := atom "."
//	atom      := predicate "(" terms? ")"
//	terms     := term { "," term }
//	term      := VARIABLE | "_" | constant
//	constant  := IDENT | STRING | INT
//
// Variables start with an upper-case letter; "_" is a don't-care variable
// (fresh at each occurrence, as used by the paper's tiling reduction rules).
// Negated literals ("not R(X)" or "!R(X)") are admitted in rule bodies only
// — the mild stratified negation of §1.1 — and "not" is a reserved word
// there. Comments run from '%' or '#' to end of line.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVariable
	tokUnderscore
	tokString
	tokInt
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // ":-"
	tokQuery   // "?"
	tokBang    // "!"
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVariable:
		return "variable"
	case tokUnderscore:
		return "_"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokDot:
		return "."
	case tokImplies:
		return ":-"
	case tokQuery:
		return "?"
	case tokBang:
		return "!"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%' || r == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next produces the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case r == '?':
		l.advance()
		return token{tokQuery, "?", line, col}, nil
	case r == '!':
		l.advance()
		return token{tokBang, "!", line, col}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf(line, col, "expected ':-', found ':%c'", l.peek())
		}
		l.advance()
		return token{tokImplies, ":-", line, col}, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				c = l.advance()
			}
			b.WriteRune(c)
		}
		return token{tokString, b.String(), line, col}, nil
	case r == '_' && !isIdentRune(peekAt(l, 1)):
		l.advance()
		return token{tokUnderscore, "_", line, col}, nil
	case unicode.IsDigit(r) || (r == '-' && unicode.IsDigit(peekAt(l, 1))):
		var b strings.Builder
		b.WriteRune(l.advance())
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			b.WriteRune(l.advance())
		}
		return token{tokInt, b.String(), line, col}, nil
	case isIdentStart(r):
		var b strings.Builder
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			b.WriteRune(l.advance())
		}
		text := b.String()
		if isVariableName(text) {
			return token{tokVariable, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", string(r))
	}
}

func peekAt(l *lexer, k int) rune {
	if l.pos+k >= len(l.src) {
		return 0
	}
	return l.src[l.pos+k]
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	// '@' appears in the scoped variable names the renderer emits
	// ("X@3"), so identifiers admit it to make rendering round-trip.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\'' || r == '@'
}

// isVariableName reports whether an identifier denotes a variable: it starts
// with an upper-case letter, or with '_' followed by more characters.
func isVariableName(s string) bool {
	if s == "" {
		return false
	}
	r := []rune(s)[0]
	if r == '_' {
		return true
	}
	return unicode.IsUpper(r)
}
