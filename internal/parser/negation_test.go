package parser

import (
	"strings"
	"testing"
)

func TestParseNegatedLiterals(t *testing.T) {
	r, err := Parse(`
unrel(X,Y) :- node(X), node(Y), not t(X,Y).
only(X) :- a(X), !b(X), not c(X).
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(r.Program.TGDs) != 2 {
		t.Fatalf("tgds = %d, want 2", len(r.Program.TGDs))
	}
	t0 := r.Program.TGDs[0]
	if len(t0.Body) != 2 || len(t0.NegBody) != 1 {
		t.Fatalf("rule 0: body %d / neg %d, want 2 / 1", len(t0.Body), len(t0.NegBody))
	}
	if got := r.Program.Reg.Name(t0.NegBody[0].Pred); got != "t" {
		t.Fatalf("negated predicate = %q, want t", got)
	}
	t1 := r.Program.TGDs[1]
	if len(t1.Body) != 1 || len(t1.NegBody) != 2 {
		t.Fatalf("rule 1: body %d / neg %d, want 1 / 2", len(t1.Body), len(t1.NegBody))
	}
	if !r.Program.HasNegation() {
		t.Fatalf("HasNegation = false")
	}
}

func TestNegatedRuleRendersAndReparses(t *testing.T) {
	r, err := Parse(`only(X) :- a(X), not b(X).`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s := r.Program.String()
	if !strings.Contains(s, "not b(") {
		t.Fatalf("rendered rule lost negation: %s", s)
	}
	r2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if len(r2.Program.TGDs[0].NegBody) != 1 {
		t.Fatalf("reparse lost NegBody: %s", r2.Program.String())
	}
}

func TestNegationParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unsafe variable", `p(X,Y) :- a(X), not b(X,Y).`, "unsafe negation"},
		{"not as predicate", `p(X) :- not(X).`, "reserved word"},
		{"not at end", `p(X) :- a(X), not .`, "expected an atom"},
		{"negation in query", `?(X) :- a(X), not b(X).`, "not supported in queries"},
		{"bang in query", `?(X) :- a(X), !b(X).`, "not supported in queries"},
		{"all-negative body", `p(X) :- not b(X).`, "positive atom"},
		{"negated head", `not p(X) :- b(X).`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestFactsCannotBeNegated(t *testing.T) {
	// A fact statement has no ':-'; "not a(1)." parses "not" as the start
	// of an atom list and must fail cleanly rather than record a fact.
	if _, err := Parse(`not a(1).`); err == nil {
		t.Fatalf("negated fact accepted")
	}
}
