package parser

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/logic"
	"repro/internal/term"
)

// Result is the outcome of parsing a source text: a program (the TGDs), the
// facts (the database part embedded in the source, if any), and the queries.
type Result struct {
	Program *logic.Program
	Facts   []atom.Atom
	Queries []*logic.CQ
}

// Parse parses source text into a fresh naming context.
func Parse(src string) (*Result, error) {
	return ParseInto(logic.NewProgram(), src)
}

// ParseInto parses source text into an existing program's naming context,
// appending parsed TGDs to it. This allows a database file and a rule file
// to share constants and predicates.
func ParseInto(prog *logic.Program, src string) (*Result, error) {
	p := &parser{
		lex:  newLexer(src),
		prog: prog,
		res:  &Result{Program: prog},
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.res, nil
}

// MustParse is Parse that panics on error; for tests and examples with
// constant sources.
func MustParse(src string) *Result {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

type parser struct {
	lex      *lexer
	tok      token
	prog     *logic.Program
	res      *Result
	ruleIdx  int
	freshIdx int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %v, found %v %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) run() error {
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return p.prog.Validate()
}

// statement parses one rule, fact, or query, ending with '.'.
func (p *parser) statement() error {
	if p.tok.kind == tokQuery {
		return p.query()
	}
	line := p.tok.line
	// Parse the first atom list (could be a head or a fact).
	vars := newVarScope(p)
	first, err := p.atomList(vars)
	if err != nil {
		return err
	}
	switch p.tok.kind {
	case tokDot:
		// Facts: each atom must be ground over constants.
		for _, a := range first {
			for _, t := range a.Args {
				if !t.IsConst() {
					return p.errorf("fact contains a variable (line %d)", line)
				}
			}
			p.res.Facts = append(p.res.Facts, a)
		}
		return p.advance()
	case tokImplies:
		if err := p.advance(); err != nil {
			return err
		}
		body, neg, err := p.bodyList(vars)
		if err != nil {
			return err
		}
		if len(body) == 0 {
			return p.errorf("rule body must contain at least one positive atom (line %d)", line)
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		all := append(append([]atom.Atom(nil), first...), body...)
		all = append(all, neg...)
		for _, a := range all {
			for _, t := range a.Args {
				if t.IsConst() {
					return p.errorf("constants are not allowed in TGDs (line %d); use an auxiliary fact", line)
				}
			}
		}
		p.ruleIdx++
		p.prog.Add(&logic.TGD{
			Body:    body,
			NegBody: neg,
			Head:    first,
			Label:   fmt.Sprintf("r%d@%d", p.ruleIdx, line),
		})
		return nil
	default:
		return p.errorf("expected '.' or ':-' after atom(s)")
	}
}

// query parses "?(X,Y) :- body." or "? :- body." (Boolean).
func (p *parser) query() error {
	if err := p.advance(); err != nil { // consume '?'
		return err
	}
	vars := newVarScope(p)
	var outs []term.Term
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind != tokRParen {
			t, err := p.term(vars)
			if err != nil {
				return err
			}
			outs = append(outs, t)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
			}
		}
		if err := p.advance(); err != nil { // consume ')'
			return err
		}
	}
	if _, err := p.expect(tokImplies); err != nil {
		return err
	}
	body, neg, err := p.bodyList(vars)
	if err != nil {
		return err
	}
	if len(neg) > 0 {
		return p.errorf("negation is not supported in queries; move the negated atom into a rule")
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	for _, o := range outs {
		if o.IsVar() && !atom.VarSet(body)[o] {
			return p.errorf("output variable %s does not occur in the query body",
				p.prog.Store.Name(o))
		}
	}
	p.res.Queries = append(p.res.Queries, &logic.CQ{Output: outs, Atoms: body})
	return nil
}

func (p *parser) atomList(vars *varScope) ([]atom.Atom, error) {
	var out []atom.Atom
	for {
		a, err := p.atom(vars)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.tok.kind != tokComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// bodyList parses a rule body: a comma-separated list of literals, where a
// literal is an atom optionally negated by the reserved word "not" or "!".
func (p *parser) bodyList(vars *varScope) (pos, neg []atom.Atom, err error) {
	for {
		negated := false
		if p.tok.kind == tokBang {
			negated = true
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		} else if p.tok.kind == tokIdent && p.tok.text == "not" {
			// "not" is a keyword only when it does not open an atom itself:
			// "not(" would be the predicate named not.
			save := p.tok
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			if p.tok.kind == tokIdent {
				negated = true
			} else if p.tok.kind == tokLParen {
				return nil, nil, p.errorf("'not' is a reserved word in rule bodies and cannot name a predicate (line %d)", save.line)
			} else {
				return nil, nil, p.errorf("expected an atom after 'not'")
			}
		}
		a, err := p.atom(vars)
		if err != nil {
			return nil, nil, err
		}
		if negated {
			neg = append(neg, a)
		} else {
			pos = append(pos, a)
		}
		if p.tok.kind != tokComma {
			return pos, neg, nil
		}
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
	}
}

func (p *parser) atom(vars *varScope) (atom.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return atom.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return atom.Atom{}, err
	}
	var args []term.Term
	for p.tok.kind != tokRParen {
		t, err := p.term(vars)
		if err != nil {
			return atom.Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return atom.Atom{}, err
			}
		} else if p.tok.kind != tokRParen {
			return atom.Atom{}, p.errorf("expected ',' or ')' in argument list")
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return atom.Atom{}, err
	}
	if !p.prog.Reg.CheckArity(name.text, len(args)) {
		return atom.Atom{}, fmt.Errorf("%d:%d: predicate %s used with conflicting arity %d",
			name.line, name.col, name.text, len(args))
	}
	pred := p.prog.Reg.Intern(name.text, len(args))
	return atom.New(pred, args...), nil
}

func (p *parser) term(vars *varScope) (term.Term, error) {
	switch p.tok.kind {
	case tokVariable:
		t := vars.get(p.tok.text)
		return t, p.advance()
	case tokUnderscore:
		t := vars.fresh()
		return t, p.advance()
	case tokIdent:
		t := p.prog.Store.Const(p.tok.text)
		return t, p.advance()
	case tokString:
		t := p.prog.Store.Const(p.tok.text)
		return t, p.advance()
	case tokInt:
		t := p.prog.Store.Const(p.tok.text)
		return t, p.advance()
	default:
		return term.Term{}, p.errorf("expected a term, found %v %q", p.tok.kind, p.tok.text)
	}
}

// varScope scopes variable names to a single statement: the same surface
// name in two different rules denotes two different logical variables. This
// guarantees that parsed TGDs are pairwise variable-disjoint, which the
// resolution machinery assumes.
type varScope struct {
	p     *parser
	scope int
	names map[string]term.Term
}

func newVarScope(p *parser) *varScope {
	p.freshIdx++
	return &varScope{p: p, scope: p.freshIdx, names: make(map[string]term.Term)}
}

func (v *varScope) get(name string) term.Term {
	if t, ok := v.names[name]; ok {
		return t
	}
	t := v.p.prog.Store.Var(fmt.Sprintf("%s@%d", name, v.scope))
	v.names[name] = t
	return t
}

func (v *varScope) fresh() term.Term {
	return v.p.prog.Store.FreshVar(fmt.Sprintf("_dc%d_", v.scope))
}
