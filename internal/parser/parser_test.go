package parser

import (
	"strings"
	"testing"

	"repro/internal/atom"
)

func TestParseFactsRulesQueries(t *testing.T) {
	src := `
% transitive closure, linear form (paper §1.2)
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).

e(a,b). e(b,c).
?(X) :- t(a,X).
`
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(r.Program.TGDs) != 2 {
		t.Fatalf("TGDs = %d, want 2", len(r.Program.TGDs))
	}
	if len(r.Facts) != 2 {
		t.Fatalf("Facts = %d, want 2", len(r.Facts))
	}
	if len(r.Queries) != 1 {
		t.Fatalf("Queries = %d, want 1", len(r.Queries))
	}
	q := r.Queries[0]
	if len(q.Output) != 1 || !q.Output[0].IsVar() {
		t.Fatalf("query output wrong: %v", q.Output)
	}
	// The constant 'a' in the query must be interned as a constant.
	if !q.Atoms[0].Args[0].IsConst() {
		t.Fatalf("query constant parsed as %v", q.Atoms[0].Args[0].Kind)
	}
}

func TestRuleVariableScoping(t *testing.T) {
	src := `
p(X) :- q(X).
r(X) :- s(X).
`
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	v1 := r.Program.TGDs[0].Body[0].Args[0]
	v2 := r.Program.TGDs[1].Body[0].Args[0]
	if v1 == v2 {
		t.Fatalf("X in different rules must be distinct variables")
	}
	// Within one rule the same name is the same variable.
	if r.Program.TGDs[0].Body[0].Args[0] != r.Program.TGDs[0].Head[0].Args[0] {
		t.Fatalf("X within one rule must be one variable")
	}
}

func TestExistentialHeadVariables(t *testing.T) {
	src := `r(X,Z) :- p(X).`
	r := MustParse(src)
	tg := r.Program.TGDs[0]
	ex := tg.Existentials()
	if len(ex) != 1 {
		t.Fatalf("existentials = %v, want one (Z)", ex)
	}
}

func TestMultiAtomHead(t *testing.T) {
	src := `a(X), b(X,W) :- c(X).`
	r := MustParse(src)
	tg := r.Program.TGDs[0]
	if len(tg.Head) != 2 {
		t.Fatalf("head atoms = %d, want 2", len(tg.Head))
	}
	if len(tg.Existentials()) != 1 {
		t.Fatalf("W should be existential")
	}
}

func TestDontCareVariables(t *testing.T) {
	src := `pair(X,U) :- row(_, X, _, U).`
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	b := r.Program.TGDs[0].Body[0]
	if b.Args[0] == b.Args[2] {
		t.Fatalf("two _ occurrences must be distinct variables")
	}
	if !b.Args[0].IsVar() || !b.Args[2].IsVar() {
		t.Fatalf("_ must parse as variables")
	}
}

func TestUnderscorePrefixedVariable(t *testing.T) {
	src := `p(X) :- q(X, _ignored, _ignored).`
	r := MustParse(src)
	b := r.Program.TGDs[0].Body[0]
	if b.Args[1] != b.Args[2] {
		t.Fatalf("named underscore variables with the same name must coincide")
	}
}

func TestStringsAndIntegers(t *testing.T) {
	src := `
price("widget", 42).
price("gad\"get", -7).
`
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(r.Facts) != 2 {
		t.Fatalf("facts = %d", len(r.Facts))
	}
	st := r.Program.Store
	if st.Name(r.Facts[0].Args[0]) != "widget" || st.Name(r.Facts[0].Args[1]) != "42" {
		t.Fatalf("string/int constants wrong: %v", st.Names(r.Facts[0].Args))
	}
	if st.Name(r.Facts[1].Args[0]) != `gad"get` {
		t.Fatalf("escape not handled: %q", st.Name(r.Facts[1].Args[0]))
	}
	if st.Name(r.Facts[1].Args[1]) != "-7" {
		t.Fatalf("negative int: %q", st.Name(r.Facts[1].Args[1]))
	}
}

func TestBooleanQuery(t *testing.T) {
	src := `? :- ctiling(X,Y), finish(Y).`
	r := MustParse(src)
	if len(r.Queries) != 1 || !r.Queries[0].IsBoolean() {
		t.Fatalf("boolean query not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unterminated string", `p("abc`, "unterminated"},
		{"bad colon", `p(X) : q(X).`, "':-'"},
		{"missing dot", `p(X) :- q(X)`, "expected"},
		{"fact with variable", `p(X).`, "variable"},
		{"arity clash", "p(a,b).\np(a).", "arity"},
		{"const in rule", `p(X) :- q(X, a).`, "constants are not allowed"},
		{"output var not in body", `?(Y) :- p(X).`, "output variable"},
		{"stray char", `p(X) :- q(X) & r(X).`, "unexpected character"},
		{"lone term", `p(X) q(X).`, "expected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestParseIntoSharedContext(t *testing.T) {
	r1 := MustParse(`e(a,b).`)
	r2, err := ParseInto(r1.Program, `t(X,Y) :- e(X,Y).`)
	if err != nil {
		t.Fatalf("ParseInto: %v", err)
	}
	if len(r2.Program.TGDs) != 1 {
		t.Fatalf("TGDs = %d", len(r2.Program.TGDs))
	}
	// Predicate e must be shared.
	id1 := r1.Facts[0].Pred
	id2 := r2.Program.TGDs[0].Body[0].Pred
	if id1 != id2 {
		t.Fatalf("predicate e not shared across ParseInto")
	}
}

func TestRoundTripThroughString(t *testing.T) {
	src := `
subclassS(X,Y) :- subclass(X,Y).
subclassS(X,Z) :- subclassS(X,Y), subclass(Y,Z).
type(X,Z) :- type(X,Y), subclassS(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).
`
	r := MustParse(src)
	rendered := r.Program.String()
	r2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered program failed: %v\n%s", err, rendered)
	}
	if len(r2.Program.TGDs) != len(r.Program.TGDs) {
		t.Fatalf("round trip changed TGD count")
	}
	for i := range r.Program.TGDs {
		a, b := r.Program.TGDs[i], r2.Program.TGDs[i]
		if len(a.Body) != len(b.Body) || len(a.Head) != len(b.Head) {
			t.Fatalf("round trip changed shape of TGD %d", i)
		}
		if len(a.Existentials()) != len(b.Existentials()) {
			t.Fatalf("round trip changed quantification of TGD %d", i)
		}
	}
}

func TestNullaryAtomRejectedGracefully(t *testing.T) {
	// Zero-arity atoms are permitted syntactically: q() in head position.
	src := `goal() :- p(X).`
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("nullary atom: %v", err)
	}
	if len(r.Program.TGDs[0].Head[0].Args) != 0 {
		t.Fatalf("nullary atom has args")
	}
}

func TestFactDedupNotApplied(t *testing.T) {
	// The parser preserves duplicates; dedup is the storage layer's job.
	r := MustParse(`e(a,b). e(a,b).`)
	if len(r.Facts) != 2 {
		t.Fatalf("parser should not dedup facts")
	}
	if !r.Facts[0].Equal(r.Facts[1]) {
		t.Fatalf("identical facts differ")
	}
}

func TestLargeProgramParses(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 500; i++ {
		b.WriteString("p")
		b.WriteString(strings.Repeat("x", i%5))
		b.WriteString("(X,Y) :- e(X,Y).\n")
	}
	r, err := Parse(b.String())
	if err != nil {
		t.Fatalf("large program: %v", err)
	}
	if len(r.Program.TGDs) != 500 {
		t.Fatalf("TGDs = %d", len(r.Program.TGDs))
	}
}

func TestQueryWithConstantOutput(t *testing.T) {
	src := `?(X,b) :- e(X,Y), f(Y,b).`
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q := r.Queries[0]
	if !q.Output[1].IsConst() {
		t.Fatalf("constant output term should parse")
	}
	_ = atom.VarSet(q.Atoms)
}
