# Developer entry points. CI runs vet+build+test directly; `make bench`
# regenerates the machine-readable perf snapshot for the current PR,
# `make bench-par` refreshes just the parallel-scaling set, and
# `make bench-scale` records the multi-core scale-out story: the
# workers=1/2/4/8 fixpoint ladder plus the load-vs-query interference
# benchmark over the pipelined bulk path.

# Benchmarks tracked across PRs (the CHANGES.md before/after set).
BENCH_PATTERN  ?= BenchmarkE8|BenchmarkE9|BenchmarkE10|BenchmarkP1|BenchmarkIncrementalDelete
BENCH_OUT      ?= BENCH_pr10.json
BENCH_TIME     ?= 10x
# Sequential baseline for workers=N scaling entries (cmd/benchjson).
BENCH_BASELINE ?= BenchmarkP1_PlanFixpointSeq
# The service benchmarks (S1 query paths, S2 load interference, S3
# compiled CQs and overlay views, S4 WAL overhead and recovery) run far
# more iterations: per-op costs are microseconds, so 10x would be pure
# noise.
BENCH_SVC_PATTERN ?= BenchmarkS1|BenchmarkS2|BenchmarkS3|BenchmarkS4
BENCH_SVC_TIME    ?= 300x

# The parallel-scaling subset: the w1/w2/w4/w8 ladders plus their
# sequential baselines.
BENCH_PAR_PATTERN ?= BenchmarkP1_PlanFixpoint
BENCH_PAR_OUT     ?= BENCH_par.json

# The scale-out set: the same w1..w8 ladder plus the S2 interference
# pair (idle vs streaming-load pattern-query latency).
BENCH_SCALE_OUT ?= BENCH_scale.json

.PHONY: all build test vet bench bench-par bench-scale

all: vet build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Two passes land in one intermediate file so a failing benchmark run
# stops the target instead of feeding benchjson a partial stream.
bench:
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . > .bench.tmp
	go test -run '^$$' -bench '$(BENCH_SVC_PATTERN)' -benchmem -benchtime $(BENCH_SVC_TIME) . >> .bench.tmp
	go run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_OUT) .bench.tmp
	@rm -f .bench.tmp
	@echo wrote $(BENCH_OUT)

bench-par:
	go test -run '^$$' -bench '$(BENCH_PAR_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| go run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_PAR_OUT)
	@echo wrote $(BENCH_PAR_OUT)

bench-scale:
	go test -run '^$$' -bench '$(BENCH_PAR_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . > .bench-scale.tmp
	go test -run '^$$' -bench 'BenchmarkS2' -benchmem -benchtime $(BENCH_SVC_TIME) . >> .bench-scale.tmp
	go run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_SCALE_OUT) .bench-scale.tmp
	@rm -f .bench-scale.tmp
	@echo wrote $(BENCH_SCALE_OUT)
