# Developer entry points. CI runs vet+build+test directly; `make bench`
# regenerates the machine-readable perf snapshot for the current PR.

# Benchmarks tracked across PRs (the CHANGES.md before/after set).
BENCH_PATTERN ?= BenchmarkE8|BenchmarkE9|BenchmarkE10|BenchmarkP1
BENCH_OUT     ?= BENCH_pr2.json
BENCH_TIME    ?= 10x

.PHONY: all build test vet bench

all: vet build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

bench:
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| go run ./cmd/benchjson -o $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)
