# Developer entry points. CI runs vet+build+test directly; `make bench`
# regenerates the machine-readable perf snapshot for the current PR, and
# `make bench-par` refreshes just the parallel-scaling set.

# Benchmarks tracked across PRs (the CHANGES.md before/after set).
BENCH_PATTERN  ?= BenchmarkE8|BenchmarkE9|BenchmarkE10|BenchmarkP1|BenchmarkIncrementalDelete
BENCH_OUT      ?= BENCH_pr5.json
BENCH_TIME     ?= 10x
# Sequential baseline for workers=N scaling entries (cmd/benchjson).
BENCH_BASELINE ?= BenchmarkP1_PlanFixpointSeq
# The service benchmarks (S1) run far more iterations: per-query costs
# are microseconds, so 10x would be pure noise.
BENCH_SVC_PATTERN ?= BenchmarkS1
BENCH_SVC_TIME    ?= 300x

# The parallel-scaling subset: the w1/w2/w4/w8 ladders plus their
# sequential baselines.
BENCH_PAR_PATTERN ?= BenchmarkP1_PlanFixpoint
BENCH_PAR_OUT     ?= BENCH_par.json

.PHONY: all build test vet bench bench-par

all: vet build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Two passes land in one intermediate file so a failing benchmark run
# stops the target instead of feeding benchjson a partial stream.
bench:
	go test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . > .bench.tmp
	go test -run '^$$' -bench '$(BENCH_SVC_PATTERN)' -benchmem -benchtime $(BENCH_SVC_TIME) . >> .bench.tmp
	go run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_OUT) .bench.tmp
	@rm -f .bench.tmp
	@echo wrote $(BENCH_OUT)

bench-par:
	go test -run '^$$' -bench '$(BENCH_PAR_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| go run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_PAR_OUT)
	@echo wrote $(BENCH_PAR_OUT)
