package repro

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// --------------------------------------------------------------------
// PR 10 — observability overhead. Both benchmarks run their workload
// twice under identical conditions, collection disabled (the library
// default — every obs hook reduces to one atomic load) and enabled
// (timestamps, histogram observes, counters). The off/on pair lands in
// BENCH_pr10.json adjacently, so the A/B is interleaved within one
// `make bench` run on the same warmed process. Acceptance: collect=off
// within 2% of the uninstrumented PR 9 numbers (it IS the same code
// path P1/S1 measure — BenchmarkP1_PlanFixpointSeq runs with collection
// off); collect=on records what scraping costs.
// --------------------------------------------------------------------

func benchObs(b *testing.B, on bool, f func(b *testing.B)) {
	prev := obs.SetEnabled(on)
	defer obs.SetEnabled(prev)
	f(b)
}

func BenchmarkP1_Instrumented(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "collect=off"
		if on {
			name = "collect=on"
		}
		b.Run(name, func(b *testing.B) {
			benchObs(b, on, func(b *testing.B) {
				res := mustParse(b, tcLinear)
				prog := res.Program
				db := workload.Chain(256).DB(prog, "e", "n")
				opt := datalog.Options{Stratify: true, BiasRecursiveAtom: true}
				var rounds int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, stats, err := datalog.Eval(prog, db, opt)
					if err != nil {
						b.Fatal(err)
					}
					rounds = stats.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
			})
		})
	}
}

func BenchmarkS1_Instrumented(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "collect=off"
		if on {
			name = "collect=on"
		}
		b.Run(name, func(b *testing.B) {
			benchObs(b, on, func(b *testing.B) {
				const n = 256
				svc := serviceTC(b, n)
				defer svc.Close()
				req := &service.QueryRequest{Pred: "t", Args: []string{"n0", "_"}}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := svc.Query(req)
					if err != nil {
						b.Fatal(err)
					}
					if len(resp.Tuples) != n-1 {
						b.Fatalf("t(n0,_) = %d tuples, want %d", len(resp.Tuples), n-1)
					}
				}
			})
		})
	}
}
