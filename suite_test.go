package repro

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/prooftree"
	"repro/internal/term"
	"repro/internal/ucq"
	"repro/internal/workload"
)

// TestE3_ShapeStatistics asserts the §1.2 recursion-shape statistics on a
// generated 200-scenario iWarded-style suite: ~55% directly piece-wise
// linear, ~15% more linearizable (~70% total), all warded.
func TestE3_ShapeStatistics(t *testing.T) {
	suite, err := workload.GenSuite(workload.DefaultSuiteParams(200, 42))
	if err != nil {
		t.Fatal(err)
	}
	var pwl, lineariz, warded int
	for _, sc := range suite {
		c := analysis.Classify(sc.Program)
		if !c.Warded {
			t.Fatalf("scenario %s not warded:\n%s", sc.Name, sc.Program.String())
		}
		warded++
		switch {
		case c.PWL:
			pwl++
			if sc.Shape != workload.ShapePWL {
				t.Errorf("%s: generated as %v but classified PWL", sc.Name, sc.Shape)
			}
		case c.Linearizable:
			lineariz++
			if sc.Shape != workload.ShapeLinearizable {
				t.Errorf("%s: generated as %v but classified linearizable", sc.Name, sc.Shape)
			}
		default:
			if sc.Shape != workload.ShapeNonPWL {
				t.Errorf("%s: generated as %v but classified non-PWL", sc.Name, sc.Shape)
			}
		}
	}
	n := float64(len(suite))
	fp, fl := float64(pwl)/n, float64(lineariz)/n
	t.Logf("direct PWL %.1f%%, linearizable %.1f%%, total %.1f%%, warded %d/%d",
		fp*100, fl*100, (fp+fl)*100, warded, len(suite))
	if fp < 0.45 || fp > 0.65 {
		t.Errorf("direct-PWL fraction %.2f outside [0.45, 0.65] (paper: ~0.55)", fp)
	}
	if fl < 0.07 || fl > 0.25 {
		t.Errorf("linearizable fraction %.2f outside [0.07, 0.25] (paper: ~0.15)", fl)
	}
	if tot := fp + fl; tot < 0.6 || tot > 0.8 {
		t.Errorf("total PWL fraction %.2f outside [0.6, 0.8] (paper: ~0.70)", tot)
	}
}

// TestSuiteEnginesAgree cross-validates the engines over a sample of
// generated warded scenarios: on PWL scenarios the chase, the linear
// proof-tree search and the Auto facade must produce identical certain
// answers; on warded non-PWL scenarios the chase and the alternating
// search must agree on spot-check tuples.
func TestSuiteEnginesAgree(t *testing.T) {
	params := workload.DefaultSuiteParams(8, 17)
	params.DataSize = 16
	params.ModulesPer = 2
	suite, err := workload.GenSuite(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range suite {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			chaseAns, cres, err := chase.CertainAnswers(sc.Program, sc.DB, sc.Query, chase.Default())
			if err != nil {
				t.Fatal(err)
			}
			if cres.Truncated {
				t.Skipf("chase truncated; scenario too large for cross-check")
			}
			cls := analysis.Classify(sc.Program)
			if !cls.PWL {
				// Spot-check a few tuples with the alternating engine.
				checkSpot(t, sc, chaseAns, prooftree.Alternating)
				return
			}
			ptAns, _, err := prooftree.Answers(sc.Program, sc.DB, sc.Query,
				prooftree.Options{Mode: prooftree.Linear, MaxVisited: 3_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if len(ptAns) != len(chaseAns) {
				t.Fatalf("proof tree %d answers, chase %d", len(ptAns), len(chaseAns))
			}
			seen := map[string]bool{}
			for _, a := range chaseAns {
				seen[tupKey(a)] = true
			}
			for _, a := range ptAns {
				if !seen[tupKey(a)] {
					t.Fatalf("proof tree invented %v", a)
				}
			}
		})
	}
}

func checkSpot(t *testing.T, sc *workload.Scenario, chaseAns [][]term.Term, mode prooftree.Mode) {
	t.Helper()
	// Positive spot checks: first two chase answers must be certain.
	for i, tup := range chaseAns {
		if i >= 2 {
			break
		}
		ok, _, err := prooftree.Decide(sc.Program, sc.DB, sc.Query, tup,
			prooftree.Options{Mode: mode, MaxVisited: 3_000_000})
		if err != nil {
			t.Skipf("alternating budget: %v", err)
		}
		if !ok {
			t.Fatalf("alternating engine rejects chase answer %v", tup)
		}
	}
}

// TestSuiteUCQSoundness: the (possibly partial) UCQ rewriting must never
// invent answers — on every generated scenario, its answer set is a subset
// of the chase's.
func TestSuiteUCQSoundness(t *testing.T) {
	params := workload.DefaultSuiteParams(8, 23)
	params.DataSize = 12
	params.ModulesPer = 2
	suite, err := workload.GenSuite(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range suite {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			chaseAns, cres, err := chase.CertainAnswers(sc.Program, sc.DB, sc.Query, chase.Default())
			if err != nil {
				t.Fatal(err)
			}
			if cres.Truncated {
				t.Skipf("chase truncated")
			}
			ucqAns, _, err := ucq.Answers(sc.Program, sc.DB, sc.Query,
				ucq.Options{MaxStates: 500, MaxAtoms: 12, MaxChunk: 3})
			if err != nil {
				t.Fatal(err)
			}
			certain := map[string]bool{}
			for _, a := range chaseAns {
				certain[tupKey(a)] = true
			}
			for _, a := range ucqAns {
				if !certain[tupKey(a)] {
					t.Fatalf("UCQ rewriting invented %v", a)
				}
			}
		})
	}
}

func tupKey(tup []term.Term) string {
	k := ""
	for _, x := range tup {
		k += fmt.Sprintf("%d:%d|", x.Kind, x.ID)
	}
	return k
}

// TestE6_ValueInventionWitness is the Lemma 6.7 separation, run through
// the public facade on every engine it exposes.
func TestE6_ValueInventionWitness(t *testing.T) {
	r, db, qs, err := core.FromSource(`
r(X,Y) :- p(X).
p(c).
? :- r(X,Y).
? :- r(X,Y), p(Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Strategy{core.ProofTreeLinear, core.ProofTreeAlternating, core.ChaseEngine, core.Translated, core.UCQRewrite} {
		a1, _, err := r.CertainAnswers(db, qs[0], s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		a2, _, err := r.CertainAnswers(db, qs[1], s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(a1) != 1 {
			t.Errorf("%v: q1 must be certain", s)
		}
		if len(a2) != 0 {
			t.Errorf("%v: q2 must NOT be certain", s)
		}
	}
}
