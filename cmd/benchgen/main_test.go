package main

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

func TestGenGraphShapesParseBack(t *testing.T) {
	for _, shape := range []string{"chain", "cycle", "grid", "tree", "random"} {
		var out strings.Builder
		if err := run([]string{"-kind", "graph", "-shape", shape, "-n", "6"}, &out); err != nil {
			t.Fatalf("shape %s: %v", shape, err)
		}
		res, err := parser.Parse(out.String())
		if err != nil {
			t.Fatalf("shape %s output does not parse: %v", shape, err)
		}
		if len(res.Program.TGDs) != 2 || len(res.Queries) != 1 {
			t.Fatalf("shape %s: wrong program shape", shape)
		}
		if len(res.Facts) == 0 {
			t.Fatalf("shape %s: no facts", shape)
		}
	}
}

func TestGenIWardedParsesAndReportsMix(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "iwarded", "-n", "10", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "mix:") {
		t.Fatalf("mix summary missing")
	}
	if !strings.Contains(s, "warded=true") {
		t.Fatalf("classification annotations missing")
	}
}

func TestGenOWLParsesBack(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "owl", "-n", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	res, err := parser.Parse(out.String())
	if err != nil {
		t.Fatalf("owl output does not parse: %v", err)
	}
	if len(res.Program.TGDs) != 6 {
		t.Fatalf("OWL program must have the 6 Example 3.3 rules, got %d", len(res.Program.TGDs))
	}
}

func TestGenErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run([]string{"-kind", "graph", "-shape", "blob"}, &out); err == nil {
		t.Fatal("unknown shape accepted")
	}
}
