// Command benchgen emits synthetic workloads in the surface syntax: graph
// databases for the reachability experiments and iWarded-style warded TGD
// scenarios with the Section 1.2 recursion-shape mix.
//
// Usage:
//
//	benchgen -kind graph -shape chain|cycle|grid|tree|random -n 64 [-m 128]
//	benchgen -kind iwarded -n 20 [-seed 7]
//	benchgen -kind owl -n 10
//
// Output goes to stdout and parses back with cmd/vadalog.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	kind := fs.String("kind", "graph", "graph | iwarded | owl")
	shape := fs.String("shape", "chain", "graph shape: chain | cycle | grid | tree | random")
	n := fs.Int("n", 32, "size (nodes / scenarios / classes)")
	m := fs.Int("m", 0, "secondary size (edges for random, grid height)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *kind {
	case "graph":
		return genGraph(out, *shape, *n, *m, *seed)
	case "iwarded":
		return genIWarded(out, *n, *seed)
	case "owl":
		return genOWL(out, *n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func genGraph(out io.Writer, shape string, n, m int, seed int64) error {
	var g *workload.Graph
	switch shape {
	case "chain":
		g = workload.Chain(n)
	case "cycle":
		g = workload.Cycle(n)
	case "grid":
		if m == 0 {
			m = n
		}
		g = workload.Grid(n, m)
	case "tree":
		g = workload.BinaryTree(n)
	case "random":
		if m == 0 {
			m = 2 * n
		}
		g = workload.RandomDigraph(n, m, seed)
	default:
		return fmt.Errorf("unknown graph shape %q", shape)
	}
	fmt.Fprintf(out, "%% %s graph, %d nodes, %d edges\n", shape, g.N, len(g.Edges))
	fmt.Fprintln(out, "t(X,Y) :- e(X,Y).")
	fmt.Fprintln(out, "t(X,Z) :- e(X,Y), t(Y,Z).")
	for _, e := range g.Edges {
		fmt.Fprintf(out, "e(n%d,n%d).\n", e[0], e[1])
	}
	fmt.Fprintf(out, "?(X) :- t(n0,X).\n")
	return nil
}

func genIWarded(out io.Writer, n int, seed int64) error {
	suite, err := workload.GenSuite(workload.DefaultSuiteParams(n, seed))
	if err != nil {
		return err
	}
	counts := map[workload.Shape]int{}
	for _, sc := range suite {
		counts[sc.Shape]++
		c := analysis.Classify(sc.Program)
		fmt.Fprintf(out, "%% ===== %s (warded=%v pwl=%v linearizable=%v levels=%d) =====\n",
			sc.Name, c.Warded, c.PWL, c.Linearizable, c.MaxLevel)
		fmt.Fprint(out, sc.Program.String())
	}
	fmt.Fprintf(out, "%% mix: pwl=%d linearizable=%d nonpwl=%d of %d\n",
		counts[workload.ShapePWL], counts[workload.ShapeLinearizable],
		counts[workload.ShapeNonPWL], len(suite))
	return nil
}

func genOWL(out io.Writer, n int, seed int64) error {
	o, err := workload.GenOWL(workload.OWLParams{
		Classes: n, Chains: 2, Restrictions: n / 2, Individuals: n, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, workload.OWLSource)
	for _, f := range o.DB.All() {
		fmt.Fprintf(out, "%s.\n", f.String(o.Program.Store, o.Program.Reg))
	}
	fmt.Fprintf(out, "?(X,Y) :- type(X,Y).\n")
	return nil
}
