// Command vadalogd is the reasoning daemon of the reproduction: a
// long-lived HTTP front end over internal/service that materializes a
// Datalog program once and serves concurrent queries against
// snapshot-isolated epochs while incremental updates stream in.
//
// Usage:
//
//	vadalogd [-addr :8077] [-adaptive] [-csv-batch 16384] [file.vada ...]
//
// Files given on the command line are loaded (rules + facts, one shared
// naming context) before the server starts accepting requests; without
// files the server starts empty and a program is loaded over HTTP.
//
// Endpoints (request and response bodies are JSON unless noted):
//
//	POST /load     {"program": "t(X,Y) :- e(X,Y). ... e(a,b)."}
//	               -> {"epoch": N, "facts": M}
//	               Replaces the served program and materializes it.
//	POST /load/csv?pred=e   body: CSV rows (text/csv)
//	               -> {"epoch": N, "staged": M}
//	               Streams one relation of base facts through the
//	               columnar bulk-load path (buffers + MergeBuffers).
//	POST /query    {"pred": "t", "args": ["a", "_"]}        (pattern)
//	               {"query": "?(X) :- t(a,X).", "limit": 100} (rule/CQ)
//	               -> {"epoch": N, "columns": 2, "tuples": [["a","b"], ...]}
//	               Runs lock-free against the current epoch's snapshot.
//	               The response STREAMS: tuples are written (and flushed)
//	               as the enumeration produces them, so the first bytes
//	               arrive before the full answer set exists, and a client
//	               that disconnects mid-stream cancels the enumeration
//	               server-side. The body shape is unchanged — one JSON
//	               object — only its delivery is incremental.
//	POST /insert   {"facts": "e(b,c). e(c,d)."} -> {"epoch": N}
//	POST /delete   {"facts": "e(a,b)."}         -> {"epoch": N}
//	GET  /stats    -> service + maintenance counters
//	GET  /healthz  -> 200 "ok"
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight queries
// finish against their pinned snapshots, then the listener closes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vadalogd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vadalogd", flag.ContinueOnError)
	addr := fs.String("addr", ":8077", "listen address")
	adaptive := fs.Bool("adaptive", false, "adaptive join-order selection in materialization fixpoints")
	csvBatch := fs.Int("csv-batch", 0, "rows per staged buffer on the CSV bulk-load path (0: default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc := service.New(service.Options{Adaptive: *adaptive, CSVBatch: *csvBatch})
	if files := fs.Args(); len(files) > 0 {
		var sb strings.Builder
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			sb.Write(b)
			sb.WriteByte('\n')
		}
		epoch, err := svc.Load(sb.String())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "vadalogd: loaded %d file(s), epoch %d, %d facts\n",
			len(files), epoch, svc.Stats().Facts)
	}

	srv := &http.Server{Addr: *addr, Handler: newHandler(svc)}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vadalogd: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "vadalogd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		svc.Close()
		fmt.Fprintln(out, "vadalogd: bye")
		return nil
	}
}

// newHandler wires the service endpoints. Split out so tests drive the
// daemon in-process through httptest.
func newHandler(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /load", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Program string `json:"program"`
		}
		if !decode(w, r, &req) {
			return
		}
		epoch, err := svc.Load(req.Program)
		if err != nil {
			fail(w, http.StatusUnprocessableEntity, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch, "facts": svc.Stats().Facts})
	})
	mux.HandleFunc("POST /load/csv", func(w http.ResponseWriter, r *http.Request) {
		pred := r.URL.Query().Get("pred")
		if pred == "" {
			fail(w, http.StatusBadRequest, errors.New("missing ?pred="))
			return
		}
		staged, epoch, err := svc.LoadCSV(pred, r.Body)
		if err != nil {
			fail(w, http.StatusUnprocessableEntity, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch, "staged": staged})
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req service.QueryRequest
		if !decode(w, r, &req) {
			return
		}
		sink := &jsonSink{w: w}
		sink.flusher, _ = w.(http.Flusher)
		// The request context cancels when the client disconnects; the
		// service checks it inside the enumeration loops, so an abandoned
		// stream stops consuming the snapshot promptly.
		if err := svc.QueryStream(r.Context(), &req, sink); err != nil {
			if !sink.begun {
				code := http.StatusUnprocessableEntity
				if errors.Is(err, service.ErrNotLoaded) {
					code = http.StatusConflict
				}
				fail(w, code, err)
				return
			}
			// Status and partial body are already on the wire; the
			// truncated (invalid) JSON tells the client the stream died.
			log.Printf("vadalogd: query stream aborted: %v", err)
		}
	})
	update := func(apply func(string) (uint64, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Facts string `json:"facts"`
			}
			if !decode(w, r, &req) {
				return
			}
			epoch, err := apply(req.Facts)
			if err != nil {
				code := http.StatusUnprocessableEntity
				if errors.Is(err, service.ErrNotLoaded) {
					code = http.StatusConflict
				}
				fail(w, code, err)
				return
			}
			reply(w, map[string]any{"epoch": epoch})
		}
	}
	mux.HandleFunc("POST /insert", update(svc.Insert))
	mux.HandleFunc("POST /delete", update(svc.Delete))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		reply(w, svc.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return logRecover(mux)
}

// flushEvery is how many streamed tuples pass between explicit flushes
// of the /query response (the first flush happens right after the
// header, so clients see bytes before the enumeration finishes).
const flushEvery = 1024

// jsonSink writes a QueryResponse-shaped JSON object incrementally: the
// header fields and the opening of "tuples" on Begin, one array element
// per Row, the closing brace with the trailing flags on End. The result
// decodes exactly like the former one-shot response; only delivery
// changed. Write errors (client gone) propagate back into the service,
// which stops the enumeration.
type jsonSink struct {
	w       http.ResponseWriter
	flusher http.Flusher
	begun   bool
	rows    int
}

func (s *jsonSink) Begin(epoch uint64, columns int) error {
	s.w.Header().Set("Content-Type", "application/json")
	s.begun = true
	if _, err := fmt.Fprintf(s.w, `{"epoch":%d,"columns":%d,"tuples":[`, epoch, columns); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *jsonSink) Row(tuple []string) error {
	b, err := json.Marshal(tuple)
	if err != nil {
		return err
	}
	if s.rows > 0 {
		b = append(b, 0)
		copy(b[1:], b)
		b[0] = ','
	}
	if _, err := s.w.Write(b); err != nil {
		return err
	}
	s.rows++
	if s.rows%flushEvery == 0 {
		s.flush()
	}
	return nil
}

func (s *jsonSink) End(truncated bool, boolAns *bool) error {
	tail := "]"
	if truncated {
		tail += `,"truncated":true`
	}
	if boolAns != nil {
		tail += fmt.Sprintf(`,"bool":%v`, *boolAns)
	}
	tail += "}\n"
	if _, err := io.WriteString(s.w, tail); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *jsonSink) flush() {
	if s.flusher != nil {
		s.flusher.Flush()
	}
}

// logRecover turns handler panics into 500s so one bad request cannot
// take the daemon down.
func logRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				log.Printf("vadalogd: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				fail(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(into); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("vadalogd: encode response: %v", err)
	}
}

func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
