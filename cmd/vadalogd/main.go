// Command vadalogd is the reasoning daemon of the reproduction: a
// long-lived HTTP front end over internal/service that materializes a
// Datalog program once and serves concurrent queries against
// snapshot-isolated epochs while incremental updates stream in.
//
// Usage:
//
//	vadalogd [flags] [file.vada ...]
//
// Flags:
//
//	-addr :8077            listen address
//	-adaptive              adaptive join-order selection in fixpoints
//	-csv-batch 0           rows per staged bulk-load buffer (0: default)
//	-max-concurrent 64     queries evaluating concurrently (0: unlimited)
//	-queue 128             queries waiting for a slot before 429s
//	-timeout 0             per-request wall-clock ceiling (0: off)
//	-max-derived 0         per-request derived-fact budget ceiling
//	-max-probes 0          per-request join-probe budget ceiling
//	-data-dir ""           durability directory: WAL + checkpoints ("": in-memory)
//	-fsync interval        WAL sync policy: always | interval | never
//	-fsync-interval 100ms  sync batching window of the interval policy
//	-checkpoint-every 4096 WAL records between automatic checkpoints
//	-drain-timeout 10s     graceful-shutdown drain window
//	-slow-query 0          log a structured trace for queries at/over this
//	                       wall time, e.g. 250ms (0: off)
//	-pprof-addr ""         serve net/http/pprof on a SEPARATE listener,
//	                       e.g. localhost:6060 ("": off)
//
// Files given on the command line are loaded (rules + facts, one shared
// naming context) before the server starts accepting requests; without
// files the server starts empty and a program is loaded over HTTP.
//
// Durability (PR 9): with -data-dir, every acknowledged update is
// write-ahead-logged and the state is periodically checkpointed; on boot
// the daemon recovers the durable state (checkpoint load + WAL tail
// replay) in the background while /healthz reports "recovering" (503).
// When durable state is recovered, command-line files are IGNORED with a
// warning — the recovered state is authoritative. /stats exposes the
// durability counters (wal_records, wal_syncs, checkpoints,
// replayed_records, ...) under "durability".
//
// Production hardening (PR 8): every request runs under a budget and the
// daemon admits a bounded amount of concurrent query work.
//
//   - -max-derived / -max-probes are server-side ceilings on per-request
//     evaluation budgets (derived-fact cap, join-probe cap; 0 =
//     unlimited). A query may request smaller caps via "max_derived" /
//     "max_probes" in the /query body, never larger.
//   - -timeout bounds every request's wall clock (0 = off). A query may
//     request a shorter deadline via "timeout_ms".
//   - -max-concurrent bounds queries evaluating at once; up to -queue
//     more wait for a slot; beyond that the daemon fast-fails 429.
//
// Failed requests carry {"error": ..., "code": ...} where code is one of
// "over_budget" (HTTP 422 — a budget cap tripped, plan.ErrOverBudget),
// "timeout" (408 — the deadline expired), "canceled" (408 — the client
// went away), "rejected" (429 — admission queue full), "not_loaded"
// (409), or "error" (422). /stats counts all four robustness outcomes:
// queries_over_budget, queries_timeout, queries_aborted,
// queries_rejected.
//
// Endpoints (request and response bodies are JSON unless noted):
//
//	POST /load     {"program": "t(X,Y) :- e(X,Y). ... e(a,b)."}
//	               -> {"epoch": N, "facts": M}
//	               Replaces the served program and materializes it.
//	POST /load/csv?pred=e   body: CSV rows (text/csv)
//	               -> {"epoch": N, "staged": M}
//	               Streams one relation of base facts through the
//	               columnar bulk-load path (buffers + MergeBuffers).
//	POST /query    {"pred": "t", "args": ["a", "_"]}        (pattern)
//	               {"query": "?(X) :- t(a,X).", "limit": 100} (rule/CQ)
//	               -> {"epoch": N, "columns": 2, "tuples": [["a","b"], ...]}
//	               Runs lock-free against the current epoch's snapshot.
//	               The response STREAMS: tuples are written (and flushed)
//	               as the enumeration produces them, so the first bytes
//	               arrive before the full answer set exists, and a client
//	               that disconnects mid-stream cancels the enumeration
//	               server-side. The body shape is unchanged — one JSON
//	               object — only its delivery is incremental.
//	               With ?explain=1 (or "explain": true in the body) the
//	               response carries an "explain" object: the structured
//	               execution trace (join orders with adaptive decisions,
//	               per-stratum rounds/probes/derived, plan- and view-cache
//	               hits, per-stage wall time).
//	POST /insert   {"facts": "e(b,c). e(c,d)."} -> {"epoch": N}
//	POST /delete   {"facts": "e(a,b)."}         -> {"epoch": N}
//	GET  /stats    -> service + maintenance counters
//	GET  /metrics  -> Prometheus text exposition (internal/obs registry):
//	               per-endpoint request latency, in-flight/queue gauges,
//	               per-class query latency/rows, fixpoint effort, WAL
//	               append/fsync latency, checkpoint size/duration,
//	               storage merge/compaction timings
//	GET  /healthz  -> {"status": "ok"} (200), or 503 with status
//	               "recovering" (WAL replay in progress), "broken"
//	               (unrecoverable engine or durability failure), or
//	               "draining" (shutdown in progress)
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops admitting
// new requests (fast-fail 503 "draining"), lets in-flight requests
// finish against their pinned snapshots for up to -drain-timeout, then
// fsyncs and closes the WAL.
//
// Observability (PR 10): metric collection (internal/obs) is switched on
// at daemon startup and scraped at GET /metrics; every request carries an
// X-Request-ID (echoed in error bodies and the slow-query log); log
// output is structured (log/slog, one line per event with key=value
// attributes). Profiling: -pprof-addr serves net/http/pprof on a
// separate listener — off by default so production exposure is an
// explicit operator decision; point it at localhost and use e.g.
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//	go tool pprof http://localhost:6060/debug/pprof/heap
//	curl -s http://localhost:6060/debug/pprof/goroutine?debug=2
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; served only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vadalogd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vadalogd", flag.ContinueOnError)
	addr := fs.String("addr", ":8077", "listen address")
	adaptive := fs.Bool("adaptive", false, "adaptive join-order selection in materialization fixpoints")
	csvBatch := fs.Int("csv-batch", 0, "rows per staged buffer on the CSV bulk-load path (0: default)")
	maxConc := fs.Int("max-concurrent", 64, "queries evaluating concurrently (0: unlimited)")
	queue := fs.Int("queue", 128, "queries waiting for an evaluation slot before 429s")
	timeout := fs.Duration("timeout", 0, "per-request wall-clock ceiling, e.g. 30s (0: off)")
	maxDerived := fs.Int("max-derived", 0, "per-request derived-fact budget ceiling (0: unlimited)")
	maxProbes := fs.Int("max-probes", 0, "per-request join-probe budget ceiling (0: unlimited)")
	dataDir := fs.String("data-dir", "", "durability directory for the WAL and checkpoints (empty: in-memory)")
	fsync := fs.String("fsync", "interval", "WAL sync policy: always | interval | never")
	fsyncInterval := fs.Duration("fsync-interval", 0, "sync batching window of the interval policy (0: 100ms)")
	ckptEvery := fs.Int("checkpoint-every", 0, "WAL records between automatic checkpoints (0: 4096)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
	slowQuery := fs.Duration("slow-query", 0, "log a structured trace for queries at/over this wall time (0: off)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate listener, e.g. localhost:6060 (empty: off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Metric collection is library-default-off (embedders and benchmarks
	// keep the zero-overhead path); the daemon is the scrape target, so it
	// turns collection on for its whole lifetime.
	obs.SetEnabled(true)
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "vadalogd")
	svc, err := service.Open(service.Options{
		Adaptive: *adaptive, CSVBatch: *csvBatch,
		MaxDerived: *maxDerived, MaxProbes: *maxProbes, MaxTimeout: *timeout,
		DataDir: *dataDir, Fsync: *fsync, FsyncInterval: *fsyncInterval,
		CheckpointEvery: *ckptEvery,
		SlowQuery:       *slowQuery, Logger: logger,
	})
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		// A separate listener keeps the profiler off the service port:
		// exposure is the operator's call, never implied by -addr. The
		// handlers live on http.DefaultServeMux (the pprof import's
		// registration), which the service mux below never serves.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(out, "vadalogd: pprof on %s\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				logger.Warn("pprof server stopped", "error", err)
			}
		}()
	}
	loadFiles := func() error {
		files := fs.Args()
		if len(files) == 0 {
			return nil
		}
		var sb strings.Builder
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			sb.Write(b)
			sb.WriteByte('\n')
		}
		epoch, err := svc.Load(sb.String())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "vadalogd: loaded %d file(s), epoch %d, %d facts\n",
			len(files), epoch, svc.Stats().Facts)
		return nil
	}
	if *dataDir == "" {
		if err := loadFiles(); err != nil {
			return err
		}
	} else {
		// Recover in the background so the listener comes up immediately
		// with /healthz reporting "recovering" (503) until replay finishes.
		// Recovered durable state is authoritative: command-line files load
		// only into a fresh data directory.
		go func() {
			if err := svc.Recover(context.Background()); err != nil {
				logger.Error("recovery failed, serving 503 broken", "error", err)
				return
			}
			if st := svc.Stats(); st.Loaded {
				fmt.Fprintf(out, "vadalogd: recovered epoch %d, %d facts, %d wal record(s) replayed\n",
					st.Epoch, st.Facts, st.Durability.ReplayedRecords)
				if len(fs.Args()) > 0 {
					logger.Warn("ignoring command-line file(s): durable state recovered",
						"files", len(fs.Args()), "data_dir", *dataDir)
				}
				return
			}
			if err := loadFiles(); err != nil {
				logger.Error("load", "error", err)
			}
		}()
	}

	var draining atomic.Bool
	srv := &http.Server{Addr: *addr, Handler: buildHandler(svc, handlerOpts{
		adm:      newAdmission(*maxConc, *queue),
		timeout:  *timeout,
		draining: &draining,
		logger:   logger,
	})}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vadalogd: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "vadalogd: %v, draining\n", sig)
		draining.Store(true) // new requests fast-fail 503 while in-flight ones finish
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain window expired", "error", err)
		}
		svc.Close() // fsyncs and closes the WAL
		fmt.Fprintln(out, "vadalogd: bye")
		return nil
	}
}

// admission is the bounded query-concurrency gate: at most cap queries
// evaluate at once, at most queue more wait for a slot, and everything
// beyond fast-fails with errRejected (HTTP 429). A nil *admission admits
// everything — the in-process test handler and embedders opt in
// explicitly.
type admission struct {
	sem      chan struct{}
	queue    int64
	waiting  atomic.Int64
	rejected atomic.Uint64
}

// errRejected is the admission-control verdict behind every 429.
var errRejected = errors.New("server saturated; retry later")

func newAdmission(capacity, queue int) *admission {
	if capacity <= 0 {
		return nil
	}
	return &admission{sem: make(chan struct{}, capacity), queue: int64(queue)}
}

// acquire takes an evaluation slot, waiting in the bounded queue if none
// is free. It fails fast with errRejected when the queue is full, and
// with the context's error when the client gives up while queued.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.queue {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return errRejected
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a != nil {
		<-a.sem
	}
}

// handlerOpts is the daemon's robustness configuration. The zero value
// (no admission gate, no timeout, no drain flag) reproduces the
// pre-hardening handler.
type handlerOpts struct {
	adm     *admission
	timeout time.Duration
	// draining, when set and true, fast-fails every request except
	// /healthz with 503 — the graceful-shutdown admission stop.
	draining *atomic.Bool
	// logger receives the handler's structured log lines; nil falls back
	// to slog.Default().
	logger *slog.Logger
}

func (o handlerOpts) log() *slog.Logger {
	if o.logger != nil {
		return o.logger
	}
	return slog.Default()
}

// errDraining is the shutdown fast-fail behind 503 "draining".
var errDraining = errors.New("server draining; shutting down")

// daemonStats is the /stats payload: the service counters plus the
// daemon-level admission counter.
type daemonStats struct {
	service.Stats
	Rejected uint64 `json:"queries_rejected"`
}

// newHandler wires the service endpoints with no admission gate or
// timeout. Split out so tests drive the daemon in-process through
// httptest.
func newHandler(svc *service.Service) http.Handler {
	return buildHandler(svc, handlerOpts{})
}

func buildHandler(svc *service.Service, opts handlerOpts) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /load", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Program string `json:"program"`
		}
		if !decode(w, r, &req) {
			return
		}
		epoch, err := svc.LoadCtx(r.Context(), req.Program)
		if err != nil {
			failErr(w, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch, "facts": svc.Stats().Facts})
	})
	mux.HandleFunc("POST /load/csv", func(w http.ResponseWriter, r *http.Request) {
		pred := r.URL.Query().Get("pred")
		if pred == "" {
			fail(w, http.StatusBadRequest, errors.New("missing ?pred="))
			return
		}
		staged, epoch, err := svc.LoadCSV(pred, r.Body)
		if err != nil {
			failErr(w, err)
			return
		}
		reply(w, map[string]any{"epoch": epoch, "staged": staged})
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req service.QueryRequest
		if !decode(w, r, &req) {
			return
		}
		if v := r.URL.Query().Get("explain"); v == "1" || v == "true" {
			req.Explain = true
		}
		req.RequestID = w.Header().Get(requestIDHeader)
		// Admission control before any evaluation work: a saturated
		// daemon answers 429 in O(1) instead of queueing unboundedly.
		if err := opts.adm.acquire(r.Context()); err != nil {
			failErr(w, err)
			return
		}
		defer opts.adm.release()
		sink := &jsonSink{w: w, explain: req.Explain}
		sink.flusher, _ = w.(http.Flusher)
		// The request context cancels when the client disconnects; the
		// service checks it inside the enumeration loops, so an abandoned
		// stream stops consuming the snapshot promptly.
		if err := svc.QueryStream(r.Context(), &req, sink); err != nil {
			if !sink.begun {
				failErr(w, err)
				return
			}
			// Status and partial body are already on the wire; the
			// truncated (invalid) JSON tells the client the stream died.
			opts.log().Warn("query stream aborted", "request_id", req.RequestID, "error", err)
		}
	})
	update := func(apply func(context.Context, string) (uint64, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Facts string `json:"facts"`
			}
			if !decode(w, r, &req) {
				return
			}
			epoch, err := apply(r.Context(), req.Facts)
			if err != nil {
				failErr(w, err)
				return
			}
			reply(w, map[string]any{"epoch": epoch})
		}
	}
	mux.HandleFunc("POST /insert", update(svc.InsertCtx))
	mux.HandleFunc("POST /delete", update(svc.DeleteCtx))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := daemonStats{Stats: svc.Stats()}
		if opts.adm != nil {
			st.Rejected = opts.adm.rejected.Load()
		}
		reply(w, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := string(svc.Health())
		if opts.draining != nil && opts.draining.Load() {
			status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		if status != string(service.HealthOK) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Default.WritePrometheus(w); err != nil {
			opts.log().Warn("metrics exposition", "error", err)
		}
	})
	registerQueueGauge(opts.adm)
	return logRecover(opts.log(), withRequestID(withObs(withDraining(opts.draining, withTimeout(opts.timeout, mux)))))
}

// withDraining fast-fails every request except /healthz once the drain
// flag flips: the shutdown path stops admitting work while letting
// already-admitted requests run out inside http.Server.Shutdown's grace
// window. /healthz stays answerable so load balancers observe the
// "draining" state instead of a refused connection.
func withDraining(d *atomic.Bool, next http.Handler) http.Handler {
	if d == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d.Load() && r.URL.Path != "/healthz" {
			failErr(w, errDraining)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withTimeout bounds every request's wall clock by deriving a deadline
// context — plain context plumbing, NOT http.TimeoutHandler, whose
// response buffering would break /query streaming. The service's budget
// machinery observes the deadline inside the evaluation hot loops.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// errStatus maps a request error to its HTTP status and structured code.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errRejected):
		return http.StatusTooManyRequests, "rejected"
	case errors.Is(err, plan.ErrOverBudget):
		return http.StatusUnprocessableEntity, "over_budget"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, "canceled"
	case errors.Is(err, service.ErrNotLoaded):
		return http.StatusConflict, "not_loaded"
	case errors.Is(err, service.ErrRecovering):
		return http.StatusServiceUnavailable, "recovering"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	default:
		return http.StatusUnprocessableEntity, "error"
	}
}

// flushEvery is how many streamed tuples pass between explicit flushes
// of the /query response (the first flush happens right after the
// header, so clients see bytes before the enumeration finishes).
const flushEvery = 1024

// jsonSink writes a QueryResponse-shaped JSON object incrementally: the
// header fields and the opening of "tuples" on Begin, one array element
// per Row, the closing brace with the trailing flags on End. The result
// decodes exactly like the former one-shot response; only delivery
// changed. Write errors (client gone) propagate back into the service,
// which stops the enumeration.
type jsonSink struct {
	w       http.ResponseWriter
	flusher http.Flusher
	begun   bool
	rows    int
	// explain leaves the object open at End: the trace arrives through
	// Trace AFTER End (the service closes the enumeration, then attaches
	// the trace), which appends "explain" and closes the object.
	explain bool
}

func (s *jsonSink) Begin(epoch uint64, columns int) error {
	s.w.Header().Set("Content-Type", "application/json")
	s.begun = true
	if _, err := fmt.Fprintf(s.w, `{"epoch":%d,"columns":%d,"tuples":[`, epoch, columns); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *jsonSink) Row(tuple []string) error {
	b, err := json.Marshal(tuple)
	if err != nil {
		return err
	}
	if s.rows > 0 {
		b = append(b, 0)
		copy(b[1:], b)
		b[0] = ','
	}
	if _, err := s.w.Write(b); err != nil {
		return err
	}
	s.rows++
	if s.rows%flushEvery == 0 {
		s.flush()
	}
	return nil
}

func (s *jsonSink) End(truncated bool, boolAns *bool) error {
	tail := "]"
	if truncated {
		tail += `,"truncated":true`
	}
	if boolAns != nil {
		tail += fmt.Sprintf(`,"bool":%v`, *boolAns)
	}
	if !s.explain {
		tail += "}\n"
	}
	if _, err := io.WriteString(s.w, tail); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *jsonSink) Trace(tr *service.QueryTrace) error {
	b, err := json.Marshal(tr)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, `,"explain":%s}`+"\n", b); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *jsonSink) flush() {
	if s.flusher != nil {
		s.flusher.Flush()
	}
}

// logRecover turns handler panics into 500s so one bad request cannot
// take the daemon down.
func logRecover(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				logger.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path,
					"request_id", w.Header().Get(requestIDHeader), "panic", fmt.Sprint(p))
				fail(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(into); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		slog.Warn("encode response", "error", err)
	}
}

// fail / failErr echo the request ID (set on the response headers by
// withRequestID before the handler ran) into the error body, so a
// client-side error report carries the correlation key for the daemon's
// logs without any extra plumbing.
func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	if id := w.Header().Get(requestIDHeader); id != "" {
		body["request_id"] = id
	}
	json.NewEncoder(w).Encode(body)
}

// failErr writes a structured error: {"error": ..., "code": ...} under
// the HTTP status errStatus maps the error to. The machine-readable code
// distinguishes over_budget / timeout / canceled / rejected without
// string-matching the message.
func failErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]string{"error": err.Error(), "code": code}
	if id := w.Header().Get(requestIDHeader); id != "" {
		body["request_id"] = id
	}
	json.NewEncoder(w).Encode(body)
}
