package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
)

// scrape fetches /metrics and returns the sample values keyed by the
// full series line prefix (name plus label set).
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value: %q", line)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestDaemonMetrics drives load → query → insert against a DURABLE
// in-process daemon and asserts the core series actually moved: request
// histogram counts per endpoint, query counters, the epoch gauge, and
// the WAL append counters. This is the in-process twin of the CI smoke's
// /metrics scrape.
func TestDaemonMetrics(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	svc, err := service.Open(service.Options{DataDir: t.TempDir(), Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()

	before := scrape(t, ts.URL)

	postJSON(t, ts.URL+"/load", map[string]string{"program": tcSource}, nil)
	var qresp struct {
		Tuples [][]string `json:"tuples"`
	}
	postJSON(t, ts.URL+"/query", map[string]any{"pred": "t", "args": []string{"a", "_"}}, &qresp)
	if len(qresp.Tuples) != 3 {
		t.Fatalf("query returned %d tuples, want 3", len(qresp.Tuples))
	}
	postJSON(t, ts.URL+"/insert", map[string]string{"facts": "e(d,e)."}, nil)

	after := scrape(t, ts.URL)
	moved := func(series string, by float64) {
		t.Helper()
		if delta := after[series] - before[series]; delta < by {
			t.Errorf("%s moved by %v, want >= %v", series, delta, by)
		}
	}
	moved(`vadalog_http_request_seconds_count{path="/query"}`, 1)
	moved(`vadalog_http_request_seconds_count{path="/load"}`, 1)
	moved(`vadalog_http_request_seconds_count{path="/insert"}`, 1)
	moved(`vadalog_queries_total`, 1)
	moved(`vadalog_query_seconds_count{class="pattern"}`, 1)
	moved(`vadalog_query_rows_count{class="pattern"}`, 1)
	moved(`vadalog_wal_records_total`, 1) // the insert's WAL append
	moved(`vadalog_fixpoints_total`, 1)   // the load's materialization
	if after[`vadalog_epoch_seq`] < 2 {   // load + insert each published
		t.Errorf("vadalog_epoch_seq = %v, want >= 2", after[`vadalog_epoch_seq`])
	}
	// The scrape observes itself mid-flight: exactly one request (the
	// /metrics GET) is being served at exposition time.
	if after[`vadalog_http_inflight`] != 1 {
		t.Errorf("vadalog_http_inflight = %v at scrape time, want 1 (the scrape itself)", after[`vadalog_http_inflight`])
	}
}

// TestDaemonExplainAndRequestID: ?explain=1 attaches the trace to the
// streamed JSON response, and every response carries an X-Request-ID
// echoed into error bodies.
func TestDaemonExplainAndRequestID(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()

	postJSON(t, ts.URL+"/load", map[string]string{"program": tcSource}, nil)

	var qresp struct {
		Tuples  [][]string `json:"tuples"`
		Explain *struct {
			Class   string `json:"class"`
			Rows    int    `json:"rows"`
			Pattern *struct {
				Pred string `json:"pred"`
			} `json:"pattern"`
		} `json:"explain"`
	}
	resp := postJSON(t, ts.URL+"/query?explain=1", map[string]any{"pred": "t", "args": []string{"a", "_"}}, &qresp)
	if qresp.Explain == nil {
		t.Fatal("?explain=1 response has no explain object")
	}
	if qresp.Explain.Class != "pattern" || qresp.Explain.Rows != 3 || qresp.Explain.Pattern == nil {
		t.Fatalf("explain = %+v", qresp.Explain)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("response missing X-Request-ID")
	}
	if !regexp.MustCompile(`^[0-9a-f]+-[0-9a-f]+$`).MatchString(id) {
		t.Fatalf("request id %q not in prefix-counter form", id)
	}

	// Error responses echo the ID in the body.
	var eresp struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	r2 := postJSON(t, ts.URL+"/query", map[string]any{"pred": "nosuch", "args": []string{"_"}}, &eresp)
	if r2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad query status = %d", r2.StatusCode)
	}
	if eresp.RequestID == "" || eresp.RequestID != r2.Header.Get("X-Request-ID") {
		t.Fatalf("error body request_id %q does not echo header %q", eresp.RequestID, r2.Header.Get("X-Request-ID"))
	}

	// A client-supplied correlation ID is honored.
	req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(`{"pred":"t","args":["a","_"]}`))
	req.Header.Set("X-Request-ID", "client-7")
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if got := r3.Header.Get("X-Request-ID"); got != "client-7" {
		t.Fatalf("client-supplied id not echoed: %q", got)
	}
}
