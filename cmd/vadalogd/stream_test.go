package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// chainProgram builds a transitive-closure program over an n-node chain —
// n(n-1)/2 closure tuples, enough to span many flush windows.
func chainProgram(n int) string {
	var b strings.Builder
	b.WriteString("t(X,Y) :- e(X,Y).\nt(X,Z) :- e(X,Y), t(Y,Z).\n")
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	return b.String()
}

// TestQueryResponseStreams: a large result arrives incrementally — bytes
// of the body are readable before the terminating brace — and the full
// body still decodes as one QueryResponse with every tuple.
func TestQueryResponseStreams(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()
	const n = 128 // 8128 closure tuples, several flush windows of 1024
	if _, err := svc.Load(chainProgram(n)); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(service.QueryRequest{Query: "?(X,Y) :- t(X,Y)."})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// Read the first chunk only: it must hold the header and some tuples
	// but not the body's end — proof the response didn't materialize
	// before the first byte.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	first := make([]byte, 16<<10)
	nr, err := io.ReadFull(br, first)
	if err != nil {
		t.Fatalf("first chunk: %d bytes, err %v", nr, err)
	}
	if !bytes.HasPrefix(first, []byte(`{"epoch":`)) {
		t.Fatalf("stream prefix: %.60q", first)
	}
	if bytes.Contains(first, []byte("}\n")) {
		t.Fatal("response ended within the first 16KiB — not streamed")
	}

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	var qr service.QueryResponse
	if err := json.Unmarshal(append(first[:nr], rest...), &qr); err != nil {
		t.Fatalf("streamed body does not decode: %v", err)
	}
	if want := n * (n - 1) / 2; len(qr.Tuples) != want {
		t.Fatalf("%d tuples, want %d", len(qr.Tuples), want)
	}
	if qr.Columns != 2 || qr.Truncated {
		t.Fatalf("header: %+v", qr)
	}
}

// TestQueryClientDisconnectCancelsEnumeration: a client closing mid-body
// aborts the server-side enumeration (Stats.Aborted increments) and the
// daemon keeps serving.
func TestQueryClientDisconnectCancelsEnumeration(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()
	// Facts only: the self-join query below matches 640k rows (clamped at
	// the 100k default limit) — megabytes of body, far beyond what the
	// connection's buffers absorb. The client stops reading after the
	// first bytes, so backpressure parks the enumeration mid-stream; the
	// disconnect then MUST abort it (it cannot have finished).
	var edges strings.Builder
	for i := 0; i < 800; i++ {
		fmt.Fprintf(&edges, "e(n%d,n%d).\n", i, i+1)
	}
	if _, err := svc.Load(edges.String()); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(service.QueryRequest{Query: "?(X,Y,Z,W) :- e(X,Y), e(Z,W)."})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a few bytes of the stream, then walk away.
	if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The abort is asynchronous: the enumeration notices the dead client
	// at its next context check or flush.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Aborted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("enumeration never aborted after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The daemon is healthy: the same query completes afterwards.
	var qr service.QueryResponse
	postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "e", Args: []string{"n0", "n1"}}, &qr)
	if len(qr.Tuples) != 1 {
		t.Fatalf("post-disconnect query: %+v", qr)
	}
}

// TestQueryStreamShapes: truncation flags and boolean answers keep the
// exact former response shape through the streaming encoder.
func TestQueryStreamShapes(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()
	if _, err := svc.Load(chainProgram(16)); err != nil {
		t.Fatal(err)
	}
	var qr service.QueryResponse
	postJSON(t, ts.URL+"/query", service.QueryRequest{Query: "?(X,Y) :- t(X,Y).", Limit: 7}, &qr)
	if len(qr.Tuples) != 7 || !qr.Truncated {
		t.Fatalf("limit: %d tuples truncated=%v", len(qr.Tuples), qr.Truncated)
	}
	qr = service.QueryResponse{}
	postJSON(t, ts.URL+"/query", service.QueryRequest{Query: "? :- t(n0,n9)."}, &qr)
	if qr.Bool == nil || !*qr.Bool {
		t.Fatalf("boolean true: %+v", qr)
	}
	qr = service.QueryResponse{}
	postJSON(t, ts.URL+"/query", service.QueryRequest{Query: "? :- t(n9,n0)."}, &qr)
	if qr.Bool == nil || *qr.Bool {
		t.Fatalf("boolean false: %+v", qr)
	}
	if qr.Tuples == nil || len(qr.Tuples) != 0 {
		t.Fatalf("boolean tuples: %+v", qr.Tuples)
	}
	// Evaluation errors still arrive as JSON error objects (nothing was
	// streamed before the failure).
	respRaw := postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "zzz", Args: []string{"_"}}, nil)
	if respRaw.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown predicate: status %d", respRaw.StatusCode)
	}
}
