package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/service"
)

// errBody is the structured error JSON every failed request carries.
type errBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// bigChain is tcSource's program over an n-node path — enough work for
// budgets and timeouts to trip mid-evaluation.
func bigChain(n int) string {
	var b strings.Builder
	b.WriteString("t(X,Y) :- e(X,Y).\nt(X,Z) :- e(X,Y), t(Y,Z).\n")
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "e(n%d,n%d).\n", i, i+1)
	}
	return b.String()
}

// compositionQuery joins the materialized closure against itself — a
// view build whose probe count dwarfs any budget used in these tests.
const compositionQuery = "v(X,Z) :- t(X,Y), t(Y,Z). ?(X) :- v(n0,X)."

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

// TestAdmissionRejectsWhenSaturated: with the only evaluation slot held
// and no queue, every query fast-fails 429 with code "rejected", the
// rejection is counted in /stats, and releasing the slot restores
// service.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	svc := service.New(service.Options{})
	if _, err := svc.Load(tcSource); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	adm := newAdmission(1, 0)
	adm.sem <- struct{}{} // hold the only slot
	ts := httptest.NewServer(buildHandler(svc, handlerOpts{adm: adm}))
	defer ts.Close()

	req := service.QueryRequest{Pred: "t", Args: []string{"_", "_"}}
	var eb errBody
	if resp := postJSON(t, ts.URL+"/query", req, &eb); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query: status %d, want 429", resp.StatusCode)
	}
	if eb.Code != "rejected" {
		t.Fatalf("saturated query: code %q, want \"rejected\"", eb.Code)
	}

	var st daemonStats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Rejected != 1 {
		t.Fatalf("queries_rejected = %d, want 1", st.Rejected)
	}

	adm.release() // free the slot; service resumes
	var qr service.QueryResponse
	if resp := postJSON(t, ts.URL+"/query", req, &qr); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after release: status %d, want 200", resp.StatusCode)
	}
	if len(qr.Tuples) == 0 {
		t.Fatal("query after release returned no tuples")
	}
}

// TestAdmissionQueueAdmitsWaiter: one waiter fits in the queue and is
// admitted once the slot frees; a second concurrent request overflows
// the queue and is rejected.
func TestAdmissionQueueAdmitsWaiter(t *testing.T) {
	svc := service.New(service.Options{})
	if _, err := svc.Load(tcSource); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	adm := newAdmission(1, 1)
	adm.sem <- struct{}{}
	ts := httptest.NewServer(buildHandler(svc, handlerOpts{adm: adm}))
	defer ts.Close()

	req := service.QueryRequest{Pred: "t", Args: []string{"_", "_"}}
	waiterDone := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/query", req, nil)
		waiterDone <- resp.StatusCode
	}()
	// Wait for the waiter to be queued, then overflow the queue.
	for deadline := time.Now().Add(5 * time.Second); adm.waiting.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	var eb errBody
	if resp := postJSON(t, ts.URL+"/query", req, &eb); resp.StatusCode != http.StatusTooManyRequests || eb.Code != "rejected" {
		t.Fatalf("overflow query: status %d code %q, want 429 \"rejected\"", resp.StatusCode, eb.Code)
	}

	adm.release()
	if code := <-waiterDone; code != http.StatusOK {
		t.Fatalf("queued waiter: status %d, want 200", code)
	}
}

// TestTimeoutMiddleware: the per-request timeout aborts a heavy view
// build with 408 and code "timeout".
func TestTimeoutMiddleware(t *testing.T) {
	svc := service.New(service.Options{})
	if _, err := svc.Load(bigChain(448)); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(buildHandler(svc, handlerOpts{timeout: 30 * time.Millisecond}))
	defer ts.Close()

	var eb errBody
	start := time.Now()
	resp := postJSON(t, ts.URL+"/query", service.QueryRequest{Query: compositionQuery}, &eb)
	if resp.StatusCode != http.StatusRequestTimeout || eb.Code != "timeout" {
		t.Fatalf("timed-out query: status %d code %q, want 408 \"timeout\"", resp.StatusCode, eb.Code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout surfaced after %v", elapsed)
	}

	var st daemonStats
	getJSON(t, ts.URL+"/stats", &st)
	if st.TimedOut == 0 {
		t.Fatal("queries_timeout not incremented")
	}
}

// TestOverBudgetRequest: per-request budget knobs surface as 422 with
// code "over_budget" and count into /stats.
func TestOverBudgetRequest(t *testing.T) {
	svc := service.New(service.Options{})
	if _, err := svc.Load(bigChain(96)); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	// The cap must trip before the response stream begins (a mid-stream
	// trip truncates the 200 body instead — tested in stream_test.go), so
	// point it at the overlay build, which runs before the first row.
	var eb errBody
	req := service.QueryRequest{Query: compositionQuery, MaxProbes: plan.BudgetStride}
	if resp := postJSON(t, ts.URL+"/query", req, &eb); resp.StatusCode != http.StatusUnprocessableEntity || eb.Code != "over_budget" {
		t.Fatalf("probe-capped view build: status %d code %q, want 422 \"over_budget\"", resp.StatusCode, eb.Code)
	}

	var st daemonStats
	getJSON(t, ts.URL+"/stats", &st)
	if st.OverBudget != 1 {
		t.Fatalf("queries_over_budget = %d, want 1", st.OverBudget)
	}
}
