package main

import (
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Daemon-level series: request latency per endpoint plus the two
// saturation gauges (in-flight requests, admission queue depth). Paths
// are a closed label set — anything outside the known endpoints lands in
// path="other", so a scanner probing random URLs cannot mint series.
var (
	httpSeconds = map[string]*obs.Histogram{}

	obsInflight = obs.NewGauge("vadalog_http_inflight", "", "Requests currently being served.")
)

func init() {
	for _, p := range []string{"/load", "/load/csv", "/query", "/insert", "/delete", "/stats", "/healthz", "/metrics", "other"} {
		httpSeconds[p] = obs.NewHistogram("vadalog_http_request_seconds", fmt.Sprintf("path=%q", p),
			"Request latency by endpoint.", obs.Seconds, obs.LatencyBuckets)
	}
}

// withObs times every request into the per-endpoint histogram and tracks
// the in-flight gauge. No ResponseWriter wrapping: /query streaming
// depends on the http.Flusher identity reaching the sink untouched.
func withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !obs.On() {
			next.ServeHTTP(w, r)
			return
		}
		h, ok := httpSeconds[r.URL.Path]
		if !ok {
			h = httpSeconds["other"]
		}
		obsInflight.Add(1)
		t0 := time.Now()
		defer func() {
			h.Observe(int64(time.Since(t0)))
			obsInflight.Add(-1)
		}()
		next.ServeHTTP(w, r)
	})
}

// registerQueueGauge exposes one admission gate's queue depth. Last
// registration wins (GaugeFunc semantics) — the daemon builds one
// handler; tests building several scrape the most recent.
func registerQueueGauge(adm *admission) {
	obs.NewGaugeFunc("vadalog_http_queue_depth", "", "Queries waiting for an admission slot.", func() float64 {
		if adm == nil {
			return 0
		}
		return float64(adm.waiting.Load())
	})
}

// Request IDs: a process-unique prefix (startup nanos) plus a counter —
// unique without randomness, cheap, and sortable within one process
// lifetime.
var (
	reqIDPrefix = uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
	reqIDCtr    atomic.Uint64
)

func nextRequestID() string {
	return fmt.Sprintf("%012x-%x", reqIDPrefix&0xFFFFFFFFFFFF, reqIDCtr.Add(1))
}

// requestIDHeader is set on EVERY response before the handler runs, so
// error writers (failErr) and the query path read the ID back from the
// response headers instead of threading it through each signature.
const requestIDHeader = "X-Request-ID"

// withRequestID assigns each request an ID, honoring one supplied by the
// client (proxies propagating their own correlation IDs).
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}
