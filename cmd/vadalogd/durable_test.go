package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/service"
	"repro/internal/wal"
)

func durPost(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, m
}

func durGet(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, m
}

// TestDaemonDurableRestart drives the daemon's durable lifecycle over
// HTTP: load + insert into a data directory, close (simulating an
// orderly exit), reopen and recover, and assert the full pre-restart
// closure answers with the replayed-record count in /stats.
func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	opt := service.Options{DataDir: dir, Fsync: "never"}

	svc, err := service.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(svc))
	if r, _ := durPost(t, ts.URL+"/load", `{"program":"t(X,Y) :- e(X,Y). t(X,Z) :- e(X,Y), t(Y,Z). e(a,b)."}`); r.StatusCode != 200 {
		t.Fatalf("load: %d", r.StatusCode)
	}
	if r, _ := durPost(t, ts.URL+"/insert", `{"facts":"e(b,c). e(c,d)."}`); r.StatusCode != 200 {
		t.Fatalf("insert: %d", r.StatusCode)
	}
	ts.Close()
	svc.Close()

	svc2, err := service.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newHandler(svc2))
	defer ts2.Close()
	defer svc2.Close()

	if r, m := durGet(t, ts2.URL+"/healthz"); r.StatusCode != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", r.StatusCode, m)
	}
	_, q := durPost(t, ts2.URL+"/query", `{"pred":"t","args":["a","_"]}`)
	if tuples := q["tuples"].([]any); len(tuples) != 3 { // a->b, a->c, a->d
		t.Fatalf("recovered closure from a: %v", q)
	}
	_, st := durGet(t, ts2.URL+"/stats")
	dur := st["durability"].(map[string]any)
	if dur["enabled"] != true || dur["replayed_records"].(float64) < 1 {
		t.Fatalf("durability stats: %v", dur)
	}
}

// TestHealthzDrainingAndBroken covers the non-ok /healthz states the
// daemon can serve: "draining" once the shutdown flag flips (everything
// else fast-fails 503 with code "draining"), and "broken" when recovery
// finds an unrecoverable directory.
func TestHealthzDrainingAndBroken(t *testing.T) {
	var draining atomic.Bool
	svc := service.New(service.Options{})
	defer svc.Close()
	ts := httptest.NewServer(buildHandler(svc, handlerOpts{draining: &draining}))
	defer ts.Close()

	if r, m := durGet(t, ts.URL+"/healthz"); r.StatusCode != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", r.StatusCode, m)
	}
	draining.Store(true)
	if r, m := durGet(t, ts.URL+"/healthz"); r.StatusCode != 503 || m["status"] != "draining" {
		t.Fatalf("draining healthz: %d %v", r.StatusCode, m)
	}
	r, m := durPost(t, ts.URL+"/insert", `{"facts":"e(a,b)."}`)
	if r.StatusCode != 503 || m["code"] != "draining" {
		t.Fatalf("draining insert: %d %v", r.StatusCode, m)
	}

	// Broken: a WAL tail with no covering checkpoint is unrecoverable.
	dir := t.TempDir()
	m2, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Append(wal.KindInsert, []byte("e(a,b).")); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	svcB, err := service.Open(service.Options{DataDir: dir, Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	if err := svcB.Recover(context.Background()); err == nil {
		t.Fatal("recovery of corrupt directory succeeded")
	}
	tsB := httptest.NewServer(newHandler(svcB))
	defer tsB.Close()
	if r, m := durGet(t, tsB.URL+"/healthz"); r.StatusCode != 503 || m["status"] != "broken" {
		t.Fatalf("broken healthz: %d %v", r.StatusCode, m)
	}
}
