package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/service"
)

const tcSource = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c). e(c,d).
`

// postJSON posts a JSON body and decodes a JSON response.
func postJSON(t *testing.T, url string, body any, into any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

// TestDaemonEndToEnd drives the full HTTP surface in-process: load a
// program, query patterns and rule queries, stream a CSV bulk load,
// apply incremental updates, and read stats — the same flow the CI
// smoke runs against the real binary.
func TestDaemonEndToEnd(t *testing.T) {
	svc := service.New(service.Options{CSVBatch: 8})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()

	// Queries before a program is loaded are 409s.
	var qr service.QueryResponse
	if resp := postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "t", Args: []string{"_", "_"}}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("query before load: status %d, want 409", resp.StatusCode)
	}

	var loadResp struct {
		Epoch uint64 `json:"epoch"`
		Facts int    `json:"facts"`
	}
	if resp := postJSON(t, ts.URL+"/load", map[string]string{"program": tcSource}, &loadResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("/load status %d", resp.StatusCode)
	}
	if loadResp.Epoch != 1 || loadResp.Facts != 3+6 {
		t.Fatalf("/load -> %+v", loadResp)
	}

	// Pattern query.
	postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "t", Args: []string{"a", "_"}}, &qr)
	if len(qr.Tuples) != 3 {
		t.Fatalf("t(a,_) = %d tuples, want 3", len(qr.Tuples))
	}
	// Rule query with a view.
	postJSON(t, ts.URL+"/query", service.QueryRequest{Query: "back(X,Y) :- t(Y,X). ?(X) :- back(d,X)."}, &qr)
	if len(qr.Tuples) != 3 {
		t.Fatalf("view query = %d tuples, want 3", len(qr.Tuples))
	}

	// CSV bulk load extends the chain: d -> x0 -> x1 ... -> x9.
	var csvBody strings.Builder
	prev := "d"
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&csvBody, "%s,x%d\n", prev, i)
		prev = fmt.Sprintf("x%d", i)
	}
	var csvResp struct {
		Epoch  uint64 `json:"epoch"`
		Staged int    `json:"staged"`
	}
	resp, err := http.Post(ts.URL+"/load/csv?pred=e", "text/csv", strings.NewReader(csvBody.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&csvResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if csvResp.Staged != 10 {
		t.Fatalf("/load/csv staged %d rows, want 10", csvResp.Staged)
	}
	postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "t", Args: []string{"a", "x9"}}, &qr)
	if len(qr.Tuples) != 1 {
		t.Fatalf("closure missing a->x9 after bulk load")
	}

	// Incremental delete and re-insert.
	var upd struct {
		Epoch uint64 `json:"epoch"`
	}
	postJSON(t, ts.URL+"/delete", map[string]string{"facts": "e(b,c)."}, &upd)
	postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "t", Args: []string{"a", "d"}}, &qr)
	if len(qr.Tuples) != 0 || qr.Epoch != upd.Epoch {
		t.Fatalf("after delete: %d tuples at epoch %d (update epoch %d)", len(qr.Tuples), qr.Epoch, upd.Epoch)
	}
	postJSON(t, ts.URL+"/insert", map[string]string{"facts": "e(b,c)."}, &upd)
	postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "t", Args: []string{"a", "d"}}, &qr)
	if len(qr.Tuples) != 1 {
		t.Fatalf("closure not restored after insert")
	}

	// Bad requests are 4xx, not panics: unknown predicate, rule in an
	// update payload, malformed JSON, missing ?pred.
	if resp := postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "zzz", Args: []string{"_"}}, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown predicate: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/insert", map[string]string{"facts": "p(X) :- e(X,Y)."}, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("rule in update: status %d", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", r2.StatusCode)
	}
	r3, err := http.Post(ts.URL+"/load/csv", "text/csv", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing pred: status %d", r3.StatusCode)
	}

	// Health and stats.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hr)
	}
	hr.Body.Close()
	var st service.Stats
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if !st.Loaded || st.Queries == 0 || st.Engine.Inserted == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDaemonConcurrentQueriesUnderChurn hammers the HTTP surface with
// parallel readers while updates stream in — the transport-level slice
// of the snapshot-isolation property (epoch tags must always be
// consistent with a published materialization; here we assert responses
// are well-formed and the service survives under -race).
func TestDaemonConcurrentQueriesUnderChurn(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	defer svc.Close()
	var sb strings.Builder
	sb.WriteString("t(X,Y) :- e(X,Y).\nt(X,Z) :- e(X,Y), t(Y,Z).\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "e(n%d,n%d).\n", i, i+1)
	}
	postJSON(t, ts.URL+"/load", map[string]string{"program": sb.String()}, nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var qr service.QueryResponse
				resp := postJSON(t, ts.URL+"/query", service.QueryRequest{Pred: "t", Args: []string{"n0", "_"}}, &qr)
				if resp.StatusCode != http.StatusOK || qr.Epoch == 0 {
					t.Errorf("query failed: status %d epoch %d", resp.StatusCode, qr.Epoch)
					return
				}
			}
		}()
	}
	for u := 0; u < 40; u++ {
		postJSON(t, ts.URL+"/delete", map[string]string{"facts": "e(n7,n8)."}, nil)
		postJSON(t, ts.URL+"/insert", map[string]string{"facts": "e(n7,n8)."}, nil)
	}
	close(done)
	wg.Wait()
}
