// Command tiling demonstrates the Theorem 5.1 reduction: piece-wise linear
// TGDs WITHOUT wardedness can simulate the unbounded tiling problem, so
// CQAns(PWL) is undecidable even in data complexity.
//
// The command builds the fixed PWL program Σ and Boolean CQ q of Section
// 5, encodes a demo tiling system as the database D_T, cross-checks a
// bounded chase of (D_T, Σ) against a brute-force tiler, and prints both
// verdicts plus the witness tiling if one exists.
//
// Usage:
//
//	tiling [-demo solvable|unsolvable] [-maxw 4] [-maxh 4] [-depth 8]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/chase"
	"repro/internal/tiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tiling:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tiling", flag.ContinueOnError)
	demo := fs.String("demo", "solvable", "solvable | unsolvable")
	maxw := fs.Int("maxw", 4, "max tiling width for the brute-force oracle")
	maxh := fs.Int("maxh", 4, "max tiling height for the brute-force oracle")
	depth := fs.Int("depth", 8, "null-depth budget for the bounded chase")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys := demoSystem(*demo)
	if sys == nil {
		return fmt.Errorf("unknown demo %q", *demo)
	}
	red, err := tiling.Reduce(sys)
	if err != nil {
		return err
	}
	a := analysis.Analyze(red.Program)
	pwl, _ := a.IsPWL()
	warded, _ := a.IsWarded()
	fmt.Fprintf(out, "fixed reduction program (Section 5):\n%s", red.Program.String())
	fmt.Fprintf(out, "piece-wise linear: %v (must be true)\n", pwl)
	fmt.Fprintf(out, "warded:            %v (must be false — that is Theorem 5.1's point)\n", warded)
	fmt.Fprintf(out, "database D_T:      %d facts\n\n", red.DB.Len())

	grid, ok := tiling.BruteForce(sys, *maxw, *maxh)
	fmt.Fprintf(out, "brute-force oracle (≤%dx%d): tiling exists = %v\n", *maxw, *maxh, ok)
	if ok {
		for _, row := range grid {
			fmt.Fprintf(out, "  %v\n", row)
		}
	}

	ans, res, err := chase.CertainAnswers(red.Program, red.DB, red.Query,
		chase.Options{Restricted: true, MaxDepth: *depth, MaxRounds: 500, MaxFacts: 500000})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bounded chase (depth %d): () ∈ cert(q, D_T, Σ) = %v  (facts derived: %d, truncated: %v)\n",
		*depth, len(ans) == 1, res.DB.Len(), res.Truncated)
	if ok != (len(ans) == 1) {
		fmt.Fprintf(out, "NOTE: verdicts differ — the chase budget may be too small for this instance\n")
	}
	return nil
}

func demoSystem(name string) *tiling.System {
	switch name {
	case "solvable":
		return &tiling.System{
			Tiles: []string{"w", "k", "wr", "kr"},
			Left:  map[string]bool{"w": true, "k": true},
			Right: map[string]bool{"wr": true, "kr": true},
			Horiz: map[[2]string]bool{{"w", "wr"}: true, {"k", "kr"}: true},
			Vert: map[[2]string]bool{
				{"w", "k"}: true, {"k", "w"}: true,
				{"wr", "kr"}: true, {"kr", "wr"}: true,
			},
			Start: "w", Finish: "k",
		}
	case "unsolvable":
		return &tiling.System{
			Tiles: []string{"a1", "b1", "r1"},
			Left:  map[string]bool{"a1": true, "b1": true},
			Right: map[string]bool{"r1": true},
			Horiz: map[[2]string]bool{{"a1", "r1"}: true, {"b1", "r1"}: true},
			Vert:  map[[2]string]bool{},
			Start: "a1", Finish: "b1",
		}
	default:
		return nil
	}
}
