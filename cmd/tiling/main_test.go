package main

import (
	"strings"
	"testing"
)

func TestSolvableDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "solvable"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"piece-wise linear: true",
		"warded:            false",
		"tiling exists = true",
		"= true", // chase verdict
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if strings.Contains(s, "verdicts differ") {
		t.Errorf("oracle and chase disagree on the solvable demo")
	}
}

func TestUnsolvableDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "unsolvable"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "tiling exists = false") {
		t.Errorf("oracle should find no tiling:\n%s", s)
	}
	if strings.Contains(s, "verdicts differ") {
		t.Errorf("oracle and chase disagree on the unsolvable demo")
	}
}

func TestUnknownDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "weird"}, &out); err == nil {
		t.Fatal("unknown demo accepted")
	}
}
