package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkP1_PlanFixpointSeq         	      10	  10927516 ns/op	       255.0 rounds	 6664778 B/op	    4030 allocs/op
BenchmarkE8_JoinOrdering/biased=true-8  	       3	  95336662 ns/op	    262653 probes	43399968 B/op	  140757 allocs/op
PASS
ok  	repro	1.315s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context not captured: %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkP1_PlanFixpointSeq" || b0.Iterations != 10 || b0.Procs != 0 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 10927516 || b0.Metrics["allocs/op"] != 4030 || b0.Metrics["rounds"] != 255 {
		t.Fatalf("b0 metrics = %v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "BenchmarkE8_JoinOrdering/biased=true" || b1.Procs != 8 {
		t.Fatalf("b1 = %+v", b1)
	}
	if b1.Metrics["probes"] != 262653 {
		t.Fatalf("b1 metrics = %v", b1.Metrics)
	}
}

const scalingSample = `
BenchmarkP1_PlanFixpointSeq                          10  10000000 ns/op
BenchmarkP1_PlanFixpointParallel/workers=1           10  11000000 ns/op
BenchmarkP1_PlanFixpointParallel/workers=4           10   5000000 ns/op
BenchmarkP1_PlanFixpointParallelDense/seq            10  40000000 ns/op
BenchmarkP1_PlanFixpointParallelDense/workers=2      10  20000000 ns/op
BenchmarkOther/workers=3                             10   1000000 ns/op
BenchmarkE8_JoinOrdering/biased=true                 10   2000000 ns/op
`

// TestDeriveScaling: workers=N variants resolve their baseline to the
// family's /seq sibling first, then the -baseline fallback; variants with
// neither are skipped, as are non-worker variants.
func TestDeriveScaling(t *testing.T) {
	doc, err := Parse(strings.NewReader(scalingSample))
	if err != nil {
		t.Fatal(err)
	}
	sc := DeriveScaling(doc.Benchmarks, "BenchmarkP1_PlanFixpointSeq")
	if len(sc) != 4 {
		t.Fatalf("derived %d entries, want 4: %+v", len(sc), sc)
	}
	byName := map[string]Scaling{}
	for _, s := range sc {
		byName[s.Name] = s
	}
	w4 := byName["BenchmarkP1_PlanFixpointParallel/workers=4"]
	if w4.Workers != 4 || w4.Baseline != "BenchmarkP1_PlanFixpointSeq" || w4.Speedup != 2.0 {
		t.Fatalf("w4 = %+v", w4)
	}
	w1 := byName["BenchmarkP1_PlanFixpointParallel/workers=1"]
	if w1.Speedup >= 1 {
		t.Fatalf("w1 speedup = %v, want < 1", w1.Speedup)
	}
	dense := byName["BenchmarkP1_PlanFixpointParallelDense/workers=2"]
	if dense.Baseline != "BenchmarkP1_PlanFixpointParallelDense/seq" || dense.Speedup != 2.0 {
		t.Fatalf("dense = %+v", dense)
	}
	if other := byName["BenchmarkOther/workers=3"]; other.Baseline != "BenchmarkP1_PlanFixpointSeq" {
		// No /seq sibling: the global fallback applies.
		t.Fatalf("other = %+v", other)
	}
	// Without a fallback only the dense family (which carries its own /seq
	// sibling) resolves.
	if noFB := DeriveScaling(doc.Benchmarks, ""); len(noFB) != 1 ||
		noFB[0].Name != "BenchmarkP1_PlanFixpointParallelDense/workers=2" {
		t.Fatalf("no-fallback derivation wrong: %+v", noFB)
	}
}

func TestParseIgnoresChatter(t *testing.T) {
	doc, err := Parse(strings.NewReader("=== RUN TestX\n--- PASS: TestX\nBenchmark\nBenchmarkBad abc\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as benchmarks: %+v", doc.Benchmarks)
	}
}
