package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkP1_PlanFixpointSeq         	      10	  10927516 ns/op	       255.0 rounds	 6664778 B/op	    4030 allocs/op
BenchmarkE8_JoinOrdering/biased=true-8  	       3	  95336662 ns/op	    262653 probes	43399968 B/op	  140757 allocs/op
PASS
ok  	repro	1.315s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context not captured: %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkP1_PlanFixpointSeq" || b0.Iterations != 10 || b0.Procs != 0 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 10927516 || b0.Metrics["allocs/op"] != 4030 || b0.Metrics["rounds"] != 255 {
		t.Fatalf("b0 metrics = %v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "BenchmarkE8_JoinOrdering/biased=true" || b1.Procs != 8 {
		t.Fatalf("b1 = %+v", b1)
	}
	if b1.Metrics["probes"] != 262653 {
		t.Fatalf("b1 metrics = %v", b1.Metrics)
	}
}

func TestParseIgnoresChatter(t *testing.T) {
	doc, err := Parse(strings.NewReader("=== RUN TestX\n--- PASS: TestX\nBenchmark\nBenchmarkBad abc\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as benchmarks: %+v", doc.Benchmarks)
	}
}
