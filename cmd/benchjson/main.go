// Command benchjson converts `go test -bench` text output into a JSON
// document, so the perf trajectory across PRs is machine-readable
// (BENCH_pr*.json artifacts; see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-output.txt
//
// Unknown lines (test framework chatter, PASS/ok trailers) are ignored;
// benchmark context lines (goos/goarch/pkg/cpu) are captured into the
// document header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the benchmark name (with the
// -GOMAXPROCS suffix stripped into Procs), the iteration count, and every
// reported metric keyed by unit (ns/op, B/op, allocs/op, custom units).
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Scaling is one derived parallel-scaling entry: a `.../workers=N`
// benchmark variant related to its family's baseline (the sequential run
// named by -baseline, or the family's own `/seq` variant). Speedup > 1
// means the parallel run beat the baseline.
type Scaling struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers"`
	Baseline string  `json:"baseline"`
	NsPerOp  float64 `json:"ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// Document is the emitted JSON shape.
type Document struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	Scaling    []Scaling         `json:"scaling,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "",
		"benchmark name used as the sequential baseline for workers=N variants lacking a /seq sibling")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	doc, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	doc.Scaling = DeriveScaling(doc.Benchmarks, *baseline)
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// contextKeys are the `key: value` header lines the bench runner prints.
var contextKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// Parse reads `go test -bench` output and returns the structured document.
func Parse(in io.Reader) (*Document, error) {
	doc := &Document{Context: map[string]string{}, Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && contextKeys[key] {
			doc.Context[key] = val
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub=x-8  3  1234 ns/op  56 B/op  7 allocs/op  89 widgets
//
// i.e. name, iterations, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// name + iterations + at least one (value, unit) pair.
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Strip the trailing -GOMAXPROCS suffix (absent when GOMAXPROCS=1).
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// DeriveScaling folds `.../workers=N` benchmark variants into parallel
// scaling entries. Each variant's baseline is, in order of preference, its
// own family's `/seq` sibling (the same benchmark run sequentially) or the
// globally named fallback baseline; variants with no resolvable baseline
// are skipped.
func DeriveScaling(benchmarks []Result, fallback string) []Scaling {
	nsOf := func(name string) (float64, bool) {
		for _, r := range benchmarks {
			if r.Name == name {
				ns, ok := r.Metrics["ns/op"]
				return ns, ok
			}
		}
		return 0, false
	}
	var out []Scaling
	for _, r := range benchmarks {
		family, variant, ok := strings.Cut(r.Name, "/")
		if !ok || !strings.HasPrefix(variant, "workers=") {
			continue
		}
		workers, err := strconv.Atoi(strings.TrimPrefix(variant, "workers="))
		if err != nil {
			continue
		}
		ns, ok := r.Metrics["ns/op"]
		if !ok || ns == 0 {
			continue
		}
		base := family + "/seq"
		baseNs, ok := nsOf(base)
		if !ok && fallback != "" {
			base = fallback
			baseNs, ok = nsOf(base)
		}
		if !ok {
			continue
		}
		out = append(out, Scaling{
			Name:     r.Name,
			Workers:  workers,
			Baseline: base,
			NsPerOp:  ns,
			Speedup:  baseNs / ns,
		})
	}
	return out
}
