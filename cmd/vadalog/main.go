// Command vadalog is the command-line front end of the reproduction: it
// loads a program (rules + facts + queries in one file, or split across
// files), reports the syntactic classification of Section 3–4 (warded?
// piece-wise linear? levels?), and answers the embedded queries with a
// selectable engine.
//
// Usage:
//
//	vadalog [-engine auto|prooftree|alternating|chase|translate|ucq]
//	        [-stats] [-classify-only] [-data dir] [-export dir] [-repl]
//	        file.vada [more files...]
//
// Files are parsed into one shared naming context in order, so a data
// file and a rule file can be mixed freely. -data loads <pred>.csv
// relations from a directory before answering; -export chases the program
// and writes every predicate of the result back as CSV. -repl starts an
// interactive session after loading the files. With no files and no -repl,
// stdin is read as a program.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/relio"
	"repro/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vadalog:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	return runIO(args, os.Stdin, out)
}

func runIO(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("vadalog", flag.ContinueOnError)
	engine := fs.String("engine", "auto", "auto | prooftree | alternating | chase | translate | ucq")
	stats := fs.Bool("stats", false, "print engine statistics")
	classifyOnly := fs.Bool("classify-only", false, "only report the program classification")
	explain := fs.Bool("explain", false, "print the per-rule variable classification and wards")
	dataDir := fs.String("data", "", "directory of <pred>.csv relations to load")
	exportDir := fs.String("export", "", "chase the program and export every relation as CSV to this directory")
	replMode := fs.Bool("repl", false, "interactive session after loading the given files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var src string
	var err error
	if *replMode && len(fs.Args()) == 0 {
		src = "" // a REPL can start from an empty program
	} else {
		src, err = readAllFrom(fs.Args(), in)
		if err != nil {
			return err
		}
	}
	res, err := parser.Parse(src)
	if err != nil {
		return err
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	if *dataDir != "" {
		n, err := relio.LoadDir(res.Program, db, *dataDir)
		if err != nil {
			return fmt.Errorf("-data: %w", err)
		}
		fmt.Fprintf(out, "loaded %d facts from %s\n", n, *dataDir)
	}
	if *replMode {
		strat, err := parseEngine(*engine)
		if err != nil {
			return err
		}
		return repl(in, out, res.Program, db, strat, *stats)
	}

	r := core.New(res.Program)
	printClassification(out, res.Program, r.Class())
	if *explain {
		fmt.Fprintln(out)
		fmt.Fprint(out, analysis.FormatReport(analysis.Analyze(res.Program).Explain()))
	}
	if *classifyOnly {
		return nil
	}
	strat, err := parseEngine(*engine)
	if err != nil {
		return err
	}
	for i, q := range res.Queries {
		fmt.Fprintf(out, "\nquery %d: %s\n", i+1, q.String(res.Program.Store, res.Program.Reg))
		ans, info, err := r.CertainAnswers(db, q, strat)
		if err != nil {
			return fmt.Errorf("query %d: %w", i+1, err)
		}
		fmt.Fprintf(out, "engine: %s%s\n", info.Strategy, incompleteTag(info))
		if q.IsBoolean() {
			fmt.Fprintf(out, "answer: %v\n", len(ans) > 0)
		} else {
			fmt.Fprintf(out, "answers (%d):\n", len(ans))
			for _, tup := range ans {
				fmt.Fprintf(out, "  (%s)\n", strings.Join(res.Program.Store.Names(tup), ", "))
			}
		}
		if *stats {
			printStats(out, info)
		}
	}
	if *exportDir != "" {
		var cres *chase.Result
		var err error
		if res.Program.HasNegation() {
			cres, err = chase.RunStratified(res.Program, db, r.ChaseOptions)
		} else {
			cres, err = chase.Run(res.Program, db, r.ChaseOptions)
		}
		if err != nil {
			return fmt.Errorf("-export: %w", err)
		}
		if err := relio.DumpDir(res.Program, cres.DB, *exportDir); err != nil {
			return fmt.Errorf("-export: %w", err)
		}
		fmt.Fprintf(out, "\nexported %d facts to %s%s\n", cres.DB.Len(), *exportDir,
			map[bool]string{true: " (chase truncated; export is a sound prefix)", false: ""}[cres.Truncated])
	}
	return nil
}

func incompleteTag(info *core.Info) string {
	if info.Incomplete {
		return " (INCOMPLETE: program outside the decidable classes or budget hit)"
	}
	return ""
}

func readAllFrom(files []string, stdin io.Reader) (string, error) {
	if len(files) == 0 {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	var sb strings.Builder
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

func parseEngine(s string) (core.Strategy, error) {
	switch s {
	case "auto":
		return core.Auto, nil
	case "prooftree":
		return core.ProofTreeLinear, nil
	case "alternating":
		return core.ProofTreeAlternating, nil
	case "chase":
		return core.ChaseEngine, nil
	case "translate":
		return core.Translated, nil
	case "ucq":
		return core.UCQRewrite, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", s)
	}
}

func printClassification(out io.Writer, prog *logic.Program, c analysis.Class) {
	fmt.Fprintf(out, "program: %d TGDs, %d predicates\n", c.NumTGDs, c.NumPreds)
	fmt.Fprintf(out, "classification:\n")
	fmt.Fprintf(out, "  warded:              %v\n", c.Warded)
	fmt.Fprintf(out, "  piece-wise linear:   %v\n", c.PWL)
	fmt.Fprintf(out, "  intensionally linear:%v\n", c.IL)
	fmt.Fprintf(out, "  datalog (full):      %v\n", c.Datalog)
	fmt.Fprintf(out, "  linear datalog:      %v\n", c.LinearDatalog)
	fmt.Fprintf(out, "  linearizable:        %v\n", c.Linearizable)
	fmt.Fprintf(out, "  max predicate level: %d\n", c.MaxLevel)
	if c.HasNegation {
		fmt.Fprintf(out, "  negation:            present (stratified=%v, mild=%v)\n",
			c.StratifiedNegation, c.MildNegation)
	}
	switch {
	case c.Warded && c.PWL:
		fmt.Fprintf(out, "  => WARD ∩ PWL: NLogSpace data complexity (Theorem 4.2); linear proof trees apply\n")
	case c.Warded:
		fmt.Fprintf(out, "  => WARD: PTime data complexity (Proposition 3.2)\n")
	case c.PWL:
		fmt.Fprintf(out, "  => PWL without wardedness: undecidable in general (Theorem 5.1); best-effort chase\n")
	default:
		fmt.Fprintf(out, "  => outside the paper's classes; best-effort chase\n")
	}
	_ = prog
}

func printStats(out io.Writer, info *core.Info) {
	if st := info.ProofStats; st != nil {
		fmt.Fprintf(out, "stats: bound=%d visited=%d resolutions=%d discharges=%d maxAtoms=%d maxStateBytes=%d frontier=%d\n",
			st.Bound, st.Visited, st.Resolutions, st.Discharges, st.MaxStateAtoms, st.MaxStateBytes, st.PeakFrontier)
	}
	if cs := info.ChaseStats; cs != nil {
		fmt.Fprintf(out, "stats: facts=%d rounds=%d applications=%d suppressedMemo=%d suppressedRestricted=%d memoPatterns=%d truncated=%v\n",
			cs.DB.Len(), cs.Rounds, cs.Applications, cs.SuppressedByMemo, cs.SuppressedRestricted, cs.MemoPatterns, cs.Truncated)
	}
	if us := info.UCQStats; us != nil {
		fmt.Fprintf(out, "stats: ucq-members=%d states=%d resolutions=%d complete=%v\n",
			len(us.CQs), us.States, us.Resolutions, us.Complete)
	}
}
