package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/relio"
	"repro/internal/storage"
	"repro/internal/term"
)

const replHelp = `statements end with '.':
  fact:   e(a,b).
  rule:   t(X,Y) :- e(X,Y).
  query:  ?(X) :- t(a,X).      answered immediately
commands:
  :help                this text
  :classify            report the program classification
  :rules               list the current rules
  :facts [pred]        fact counts (or facts of one predicate)
  :engine <name>       auto|prooftree|alternating|chase|translate|ucq
  :stats on|off        toggle per-query engine statistics
  :load <dir>          load <pred>.csv relations from a directory
  :why <fact>          chase and print a derivation tree for the fact
  :prove <fact>        print a linear proof-tree run for the fact (WARD ∩ PWL)
  :quit                leave
`

// repl runs an interactive session: rules and facts accumulate in the
// shared naming context, queries are answered as they arrive, and the
// reasoner (with its classification) is rebuilt whenever the rule set
// changes.
func repl(in io.Reader, out io.Writer, prog *logic.Program, db *storage.DB, strat core.Strategy, stats bool) error {
	fmt.Fprintln(out, "vadalog repl — :help for commands")
	reasoner := core.New(prog)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			prompt()
			continue
		case pending.Len() == 0 && strings.HasPrefix(line, ":"):
			if quit := replCommand(out, line, prog, db, &reasoner, &strat, &stats); quit {
				return nil
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(line, ".") {
			fmt.Fprint(out, "| ") // continuation
			continue
		}
		stmt := pending.String()
		pending.Reset()
		replStatement(out, stmt, prog, db, &reasoner, strat, stats)
		prompt()
	}
	fmt.Fprintln(out)
	return sc.Err()
}

// replStatement parses one complete statement and applies it: facts are
// inserted, rules appended (rebuilding the reasoner), queries answered.
func replStatement(out io.Writer, stmt string, prog *logic.Program, db *storage.DB, reasoner **core.Reasoner, strat core.Strategy, stats bool) {
	before := len(prog.TGDs)
	res, err := parser.ParseInto(prog, stmt)
	if err != nil {
		// Parsing may have appended rules before failing; roll back.
		prog.TGDs = prog.TGDs[:before]
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	if n := db.InsertAll(res.Facts); n > 0 || len(res.Facts) > 0 {
		fmt.Fprintf(out, "+%d facts\n", n)
	}
	if len(prog.TGDs) != before {
		*reasoner = core.New(prog)
		fmt.Fprintf(out, "+%d rules (program: %d TGDs)\n", len(prog.TGDs)-before, len(prog.TGDs))
	}
	for _, q := range res.Queries {
		ans, info, err := (*reasoner).CertainAnswers(db, q, strat)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		if q.IsBoolean() {
			fmt.Fprintf(out, "%v  [%s]%s\n", len(ans) > 0, info.Strategy, incompleteTag(info))
		} else {
			for _, tup := range ans {
				fmt.Fprintf(out, "(%s)\n", strings.Join(prog.Store.Names(tup), ", "))
			}
			fmt.Fprintf(out, "%d answers  [%s]%s\n", len(ans), info.Strategy, incompleteTag(info))
		}
		if stats {
			printStats(out, info)
		}
	}
}

// replCommand executes a ':' command, reporting whether the session should
// end.
func replCommand(out io.Writer, line string, prog *logic.Program, db *storage.DB, reasoner **core.Reasoner, strat *core.Strategy, stats *bool) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":exit", ":q":
		return true
	case ":help":
		fmt.Fprint(out, replHelp)
	case ":classify":
		printClassification(out, prog, (*reasoner).Class())
	case ":rules":
		if len(prog.TGDs) == 0 {
			fmt.Fprintln(out, "(no rules)")
		}
		for _, t := range prog.TGDs {
			fmt.Fprintln(out, t.String(prog.Store, prog.Reg))
		}
	case ":facts":
		if len(fields) > 1 {
			id, ok := prog.Reg.Lookup(fields[1])
			if !ok {
				fmt.Fprintf(out, "unknown predicate %q\n", fields[1])
				break
			}
			for _, f := range db.Facts(id) {
				fmt.Fprintln(out, f.String(prog.Store, prog.Reg))
			}
			break
		}
		counts := make(map[string]int)
		for _, f := range db.All() {
			counts[prog.Reg.Name(f.Pred)]++
		}
		if len(counts) == 0 {
			fmt.Fprintln(out, "(no facts)")
		}
		for _, name := range prog.Reg.SortedNames() {
			if counts[name] > 0 {
				fmt.Fprintf(out, "%-20s %d\n", name, counts[name])
			}
		}
	case ":engine":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: :engine <name>")
			break
		}
		s, err := parseEngine(fields[1])
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		*strat = s
		fmt.Fprintf(out, "engine: %s\n", s)
	case ":stats":
		if len(fields) == 2 && fields[1] == "on" {
			*stats = true
		} else if len(fields) == 2 && fields[1] == "off" {
			*stats = false
		} else {
			fmt.Fprintln(out, "usage: :stats on|off")
			break
		}
		fmt.Fprintf(out, "stats: %v\n", *stats)
	case ":load":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: :load <dir>")
			break
		}
		n, err := relio.LoadDir(prog, db, fields[1])
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(out, "+%d facts from %s\n", n, fields[1])
	case ":why":
		arg := strings.TrimSpace(strings.TrimPrefix(line, ":why"))
		if arg == "" {
			fmt.Fprintln(out, "usage: :why pred(c1,...,cn)")
			break
		}
		if err := replWhy(out, arg, prog, db); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	case ":prove":
		arg := strings.TrimSpace(strings.TrimPrefix(line, ":prove"))
		if arg == "" {
			fmt.Fprintln(out, "usage: :prove pred(c1,...,cn)")
			break
		}
		if err := replProve(out, arg, prog, db); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	default:
		fmt.Fprintf(out, "unknown command %s (:help)\n", fields[0])
	}
	return false
}

// replProve runs the linear proof-tree search for the given ground fact
// (as an atomic query) and prints the accepting run — a linear proof tree.
func replProve(out io.Writer, factSrc string, prog *logic.Program, db *storage.DB) error {
	if !strings.HasSuffix(factSrc, ".") {
		factSrc += "."
	}
	scratch := &logic.Program{Store: prog.Store, Reg: prog.Reg}
	res, err := parser.ParseInto(scratch, factSrc)
	if err != nil {
		return err
	}
	if len(res.Facts) != 1 || len(res.Queries) != 0 || len(scratch.TGDs) != 0 {
		return fmt.Errorf(":prove takes exactly one ground fact")
	}
	f := res.Facts[0]
	// Build the atomic query ?(x1..xn) :- p(x1..xn) and decide the fact's
	// tuple with a trace.
	q := &logic.CQ{}
	args := make([]term.Term, len(f.Args))
	for i := range f.Args {
		v := prog.Store.FreshVar("_prove")
		args[i] = v
		q.Output = append(q.Output, v)
	}
	q.Atoms = []atom.Atom{atom.New(f.Pred, args...)}
	ok, tr, stats, err := prooftree.DecideWithTrace(prog, db, q, f.Args,
		prooftree.Options{Mode: prooftree.Linear, MaxVisited: 2_000_000})
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintln(out, "not certain (no linear proof tree exists)")
		return nil
	}
	fmt.Fprintf(out, "certain (node-width bound %d, max width used %d)\n", stats.Bound, tr.MaxWidth())
	fmt.Fprint(out, tr.Format())
	return nil
}

// replWhy chases the current program with provenance and prints the
// derivation tree of the given ground fact.
func replWhy(out io.Writer, factSrc string, prog *logic.Program, db *storage.DB) error {
	if !strings.HasSuffix(factSrc, ".") {
		factSrc += "."
	}
	// Parse the fact in a scratch program sharing the naming context, so
	// the rule set is untouched and constants resolve to existing terms.
	scratch := &logic.Program{Store: prog.Store, Reg: prog.Reg}
	res, err := parser.ParseInto(scratch, factSrc)
	if err != nil {
		return err
	}
	if len(res.Facts) != 1 || len(res.Queries) != 0 || len(scratch.TGDs) != 0 {
		return fmt.Errorf(":why takes exactly one ground fact")
	}
	opt := chase.Default()
	opt.Provenance = true
	run := chase.Run
	if prog.HasNegation() {
		run = chase.RunStratified
	}
	cres, err := run(prog, db, opt)
	if err != nil {
		return err
	}
	exp, err := cres.Explain(res.Facts[0])
	if err != nil {
		return err
	}
	fmt.Fprint(out, exp.Format(prog))
	return nil
}
