package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runREPL(t *testing.T, input string, args ...string) string {
	t.Helper()
	var out strings.Builder
	allArgs := append([]string{"-repl"}, args...)
	if err := runIO(allArgs, strings.NewReader(input), &out); err != nil {
		t.Fatalf("repl: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestREPLFactsRulesQuery(t *testing.T) {
	out := runREPL(t, `
e(a,b).
e(b,c).
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X) :- t(a,X).
:quit
`)
	for _, want := range []string{"+1 facts", "(program: 2 TGDs)", "(b)", "(c)", "2 answers"} {
		if !strings.Contains(out, want) {
			t.Errorf("repl output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLMultilineStatement(t *testing.T) {
	out := runREPL(t, `
t(X,Z) :-
e(X,Y),
t(Y,Z).
:rules
:quit
`)
	if !strings.Contains(out, "+1 rules") {
		t.Errorf("multiline rule not accepted:\n%s", out)
	}
	if !strings.Contains(out, "t(") || !strings.Contains(out, ":- ") {
		t.Errorf(":rules did not list the rule:\n%s", out)
	}
}

func TestREPLCommands(t *testing.T) {
	out := runREPL(t, `
e(a,b).
:classify
:facts
:facts e
:engine chase
:stats on
?(X) :- e(X,Y).
:engine bogus
:unknown
:quit
`)
	for _, want := range []string{
		"warded:              true", // empty rule set is trivially warded
		"e                    1",
		"e(a,b)",
		"engine: chase",
		"stats: true",
		"1 answers",
		"stats: facts=",
		`unknown engine "bogus"`,
		"unknown command :unknown",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("repl output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLParseErrorRecovers(t *testing.T) {
	out := runREPL(t, `
t(X :- e(X).
e(a,b).
?(X,Y) :- e(X,Y).
:quit
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error not reported:\n%s", out)
	}
	if !strings.Contains(out, "1 answers") {
		t.Errorf("session did not recover after error:\n%s", out)
	}
}

func TestREPLLoadCSV(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "edge.csv"), []byte("a,b\nb,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runREPL(t, `
:load `+dir+`
?(X,Y) :- edge(X,Y).
:quit
`)
	if !strings.Contains(out, "+2 facts from") || !strings.Contains(out, "2 answers") {
		t.Errorf("csv load failed:\n%s", out)
	}
}

func TestREPLNegationQuery(t *testing.T) {
	out := runREPL(t, `
node(a). node(b).
e(a,b).
covered(Y) :- e(X,Y).
bare(X) :- node(X), not covered(X).
?(X) :- bare(X).
:quit
`)
	if !strings.Contains(out, "(a)") || !strings.Contains(out, "1 answers") {
		t.Errorf("negation in repl failed:\n%s", out)
	}
}

func TestREPLWhy(t *testing.T) {
	out := runREPL(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
:why t(a,c)
:why t(c,a)
:why
:quit
`)
	for _, want := range []string{
		"t(a,c)   [by r1@", // statements parse separately, so each rule is its file's r1
		"e(a,b)   [database]",
		"error: chase: fact not in the chase result",
		"usage: :why",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("repl :why output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLProve(t *testing.T) {
	out := runREPL(t, `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
:prove t(a,c)
:prove t(c,a)
:prove
:quit
`)
	for _, want := range []string{
		"certain (node-width bound",
		"resolve",
		"embed into D",
		"not certain (no linear proof tree exists)",
		"usage: :prove",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("repl :prove output missing %q:\n%s", want, out)
		}
	}
}

func TestDataAndExportFlags(t *testing.T) {
	dataDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dataDir, "e.csv"), []byte("a,b\nb,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rules := writeTemp(t, "p.vada", `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
?(X) :- t(a,X).
`)
	exportDir := filepath.Join(t.TempDir(), "out")
	var out strings.Builder
	if err := run([]string{"-data", dataDir, "-export", exportDir, rules}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "loaded 2 facts") {
		t.Errorf("missing data-load report:\n%s", out.String())
	}
	b, err := os.ReadFile(filepath.Join(exportDir, "t.csv"))
	if err != nil {
		t.Fatalf("exported t.csv: %v", err)
	}
	if n := strings.Count(string(b), "\n"); n != 3 { // (a,b),(b,c),(a,c)
		t.Errorf("t.csv rows = %d, want 3:\n%s", n, b)
	}
}

func TestEngineUCQFlag(t *testing.T) {
	f := writeTemp(t, "p.vada", `
p(X) :- base(X).
base(a).
?(X) :- p(X).
`)
	var out strings.Builder
	if err := run([]string{"-engine", "ucq", "-stats", f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ucq-rewriting") || !strings.Contains(out.String(), "ucq-members=") {
		t.Errorf("ucq engine output:\n%s", out.String())
	}
}
