package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sample = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
e(a,b). e(b,c).
?(X) :- t(a,X).
? :- t(a,c).
`

func TestRunClassifyAndAnswer(t *testing.T) {
	f := writeTemp(t, "p.vada", sample)
	var out strings.Builder
	if err := run([]string{f}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"warded:              true",
		"piece-wise linear:   true",
		"WARD ∩ PWL",
		"answers (2)",
		"answer: true",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEngines(t *testing.T) {
	f := writeTemp(t, "p.vada", sample)
	for _, engine := range []string{"auto", "prooftree", "alternating", "chase", "translate"} {
		var out strings.Builder
		if err := run([]string{"-engine", engine, f}, &out); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out.String(), "answers (2)") {
			t.Errorf("engine %s: wrong answers:\n%s", engine, out.String())
		}
	}
}

func TestRunStatsFlag(t *testing.T) {
	f := writeTemp(t, "p.vada", sample)
	var out strings.Builder
	if err := run([]string{"-stats", f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stats:") {
		t.Errorf("stats flag produced no stats:\n%s", out.String())
	}
}

func TestRunClassifyOnly(t *testing.T) {
	f := writeTemp(t, "p.vada", sample)
	var out strings.Builder
	if err := run([]string{"-classify-only", f}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "query 1") {
		t.Errorf("classify-only ran queries")
	}
}

func TestRunMultipleFilesShareContext(t *testing.T) {
	rules := writeTemp(t, "rules.vada", "t(X,Y) :- e(X,Y).\nt(X,Z) :- e(X,Y), t(Y,Z).\n")
	data := writeTemp(t, "data.vada", "e(a,b). e(b,c).\n?(X) :- t(a,X).\n")
	var out strings.Builder
	if err := run([]string{rules, data}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "answers (2)") {
		t.Errorf("cross-file context broken:\n%s", out.String())
	}
}

func TestRunExplain(t *testing.T) {
	f := writeTemp(t, "p.vada", sample)
	var out strings.Builder
	if err := run([]string{"-explain", "-classify-only", f}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ward:") || !strings.Contains(s, "recursion:") {
		t.Errorf("explain output missing sections:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-engine", "nope", writeTemp(t, "x.vada", "e(a,b).")}, &out); err == nil {
		t.Errorf("bad engine accepted")
	}
	if err := run([]string{"/does/not/exist.vada"}, &out); err == nil {
		t.Errorf("missing file accepted")
	}
	bad := writeTemp(t, "bad.vada", "p(X) :- .")
	if err := run([]string{bad}, &out); err == nil {
		t.Errorf("syntax error accepted")
	}
}

func TestNonWardedWarning(t *testing.T) {
	f := writeTemp(t, "nw.vada", `
r(X,Z) :- p(X).
q(Z) :- r(X,Z), r(Y,Z).
p(a).
? :- q(Z).
`)
	var out strings.Builder
	if err := run([]string{f}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "INCOMPLETE") {
		t.Errorf("non-warded run should be flagged incomplete:\n%s", out.String())
	}
}
