// Reachability and the linearization of Section 1.2: the associative
// transitive-closure program is warded but NOT piece-wise linear; the
// standard elimination of unnecessary non-linear recursion rewrites it to
// the linear form, unlocking the NLogSpace proof-tree engine. The example
// shows both programs answer identically while only the rewritten one
// classifies as PWL — and contrasts the per-state footprint of the proof
// search with the chase's materialization.
//
// Run with:
//
//	go run ./examples/reachability
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/term"
	"repro/internal/workload"
)

func main() {
	// The associative (non-PWL) closure program.
	res, err := parser.Parse(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`)
	if err != nil {
		log.Fatal(err)
	}
	prog := res.Program
	before := analysis.Classify(prog)
	lin, changed := analysis.EliminateNonLinearRecursion(prog)
	after := analysis.Classify(lin)
	fmt.Printf("associative TC: pwl=%v linearizable=%v\n", before.PWL, before.Linearizable)
	fmt.Printf("after elimination (changed=%v): pwl=%v linear-datalog=%v\n\n",
		changed, after.PWL, after.LinearDatalog)

	// A 256-node chain; ask whether the far end is reachable.
	g := workload.Chain(256)
	db := g.DB(lin, "e", "n")

	// Decision: is n255 reachable from n0?
	reach, err := parser.ParseInto(lin, `?(A,B) :- t(A,B).`)
	if err != nil {
		log.Fatal(err)
	}
	tuple := []term.Term{lin.Store.Const("n0"), lin.Store.Const("n255")}
	ok, stats, err := prooftree.Decide(lin, db, reach.Queries[0], tuple, prooftree.Options{Mode: prooftree.Linear})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proof-tree decision t(n0,n255) = %v\n", ok)
	fmt.Printf("  states visited: %d, per-state max %d atoms / %d bytes (log-size working set)\n",
		stats.Visited, stats.MaxStateAtoms, stats.MaxStateBytes)

	cres, err := chase.Run(lin, db, chase.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chase materialization of the same closure: %d facts (quadratic working set)\n", cres.DB.Len())

	// The core facade picks the proof-tree engine automatically.
	r := core.New(lin)
	ok2, info, err := r.IsCertain(db, reach.Queries[0], tuple, core.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core.Auto agrees: %v via %s\n", ok2, info.Strategy)
}
