// Stratified negation over a company knowledge graph — the "very mild and
// easy to handle negation" the paper invokes (§1.1, key property 2) to reach
// SPARQL answering under the OWL 2 QL entailment regime.
//
// The program is warded and piece-wise linear in its positive part; the
// negation is mild (every negated variable is harmless, so it only ever
// binds constants) and stratified (nothing is negated inside its own
// recursive component). The reasoner therefore answers with the stratified
// chase: each stratum is closed before the rules negating it fire.
//
// Scenario: ownership control is the recursive core; negation then carves
// out the complement relations a SPARQL MINUS / FILTER NOT EXISTS would ask
// for — independent companies, market leaders without a controlling parent,
// and dormant companies untouched by any ownership edge.
//
// Run with:
//
//	go run ./examples/negation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const source = `
% --- recursive positive core: transitive ownership control -----------------
controls(X,Y) :- owns(X,Y).
controls(X,Z) :- owns(X,Y), controls(Y,Z).

% --- derived views ----------------------------------------------------------
controlled(Y)  :- controls(X,Y).
hasHolding(X)  :- controls(X,Y).

% --- mild stratified negation (SPARQL MINUS-style complements) --------------
independent(X) :- company(X), not controlled(X).
leafCompany(X) :- company(X), not hasHolding(X).
dormant(X)     :- company(X), not controlled(X), not hasHolding(X).

% --- data --------------------------------------------------------------------
company(acme). company(beta). company(gamma).
company(delta). company(omega).
owns(acme, beta). owns(beta, gamma). owns(delta, gamma).

?(X) :- independent(X).
?(X) :- leafCompany(X).
?(X) :- dormant(X).
?(X,Y) :- controls(X,Y).
`

func main() {
	reasoner, db, queries, err := core.FromSource(source)
	if err != nil {
		log.Fatal(err)
	}
	cls := reasoner.Class()
	fmt.Printf("classification: warded=%v pwl=%v negation=%v stratified=%v mild=%v\n\n",
		cls.Warded, cls.PWL, cls.HasNegation, cls.StratifiedNegation, cls.MildNegation)

	st := reasoner.Program().Store
	names := []string{"independent", "leafCompany", "dormant", "controls"}
	for i, q := range queries {
		ans, info, err := reasoner.CertainAnswers(db, q, core.Auto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s (%s):\n", names[i], info.Strategy)
		for _, tup := range ans {
			if len(tup) == 1 {
				fmt.Printf("  %s\n", st.Name(tup[0]))
			} else {
				fmt.Printf("  %s -> %s\n", st.Name(tup[0]), st.Name(tup[1]))
			}
		}
	}
}
