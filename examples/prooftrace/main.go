// Witness extraction: the accepting run of the §4.3 algorithm IS a linear
// proof tree (Theorem 4.8), and this example prints one. Each line is one
// level of the tree — a CQ state of at most f_WARD∩PWL(q,Σ) atoms — and
// each arrow is a resolution step (Definition 4.3) or a discharge (the
// specialization+decomposition composite that matches an atom into the
// database). The final state embeds into D, which is exactly the
// termination test "atoms(p) ⊆ D" of the algorithm.
//
// Run with:
//
//	go run ./examples/prooftrace
package main

import (
	"fmt"
	"log"

	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/storage"
	"repro/internal/term"
)

const source = `
% The OWL 2 QL fragment of Example 3.3, with an existential restriction.
subclassT(X,Y) :- subclass(X,Y).
subclassT(X,Z) :- subclass(X,Y), subclassT(Y,Z).
type(X,Z) :- type(X,Y), subclassT(Y,Z).
triple(X,Z,W) :- type(X,Y), restriction(Y,Z).

subclass(professor, staff).
subclass(staff, person).
restriction(professor, teaches).
type(turing, professor).

?(X) :- type(X, person).
? :- triple(turing, teaches, W).
`

func main() {
	res, err := parser.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)
	st := res.Program.Store

	// Witness 1: type(turing, person) through two subclass hops.
	ok, tr, stats, err := prooftree.DecideWithTrace(res.Program, db, res.Queries[0],
		[]term.Term{st.Const("turing")}, prooftree.Options{Mode: prooftree.Linear})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("type(turing, person) certain: %v  (node-width bound %d, max width used %d)\n",
		ok, stats.Bound, tr.MaxWidth())
	fmt.Print(tr.Format())

	// Witness 2: the Boolean existential query — the proof resolves through
	// the value-inventing TGD.
	ok2, tr2, _, err := prooftree.DecideWithTrace(res.Program, db, res.Queries[1],
		nil, prooftree.Options{Mode: prooftree.Linear})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriple(turing, teaches, ∃W) certain: %v\n", ok2)
	fmt.Print(tr2.Format())
}
