// Data exchange in the ChaseBench style (the paper's §1.2 benchmark
// family): a source schema is mapped into a target schema by source-to-
// target TGDs whose existentials invent target entities, the chase
// materializes a universal target instance, and certain-answer queries run
// over it. The scenario exercises the full bulk-data pipeline: relations
// arrive as CSV files (internal/relio), the warded chase materializes the
// exchange, and the target relations are exported back to CSV.
//
// Source schema:   worksAt(emp, deptName), mgr(deptName, boss)
// Target schema:   emp(e, d), dept(d, name), head(d, boss)
// The department entity d is INVENTED by the mapping (existential): the
// source never had department ids, only names.
//
// Run with:
//
//	go run ./examples/dataexchange
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/relio"
	"repro/internal/storage"
)

const mapping = `
% Source-to-target TGDs. D is an invented department entity; the two rules
% agree on it only through the chase's restricted semantics, so the same
% department name can map to several entity ids — exactly the incomplete-
% information semantics data exchange is defined by.
emp(E,D), dept(D,N) :- worksAt(E,N).
head(D,B) :- dept(D,N), mgr(N,B).

% Target-side view: who (transitively) reports to whom through dept heads.
reports(E,B) :- emp(E,D), head(D,B).

?(E,B) :- reports(E,B).
?(N) :- dept(D,N).
`

func main() {
	// Stage the source instance as CSV files, as a ChaseBench scenario would
	// ship them.
	srcDir, err := os.MkdirTemp("", "dx-source-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(srcDir)
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(srcDir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	write("worksAt.csv", "ada,engineering\ngrace,engineering\nalan,research\n")
	write("mgr.csv", "engineering,barbara\nresearch,donald\n")

	res, err := parser.Parse(mapping)
	if err != nil {
		log.Fatal(err)
	}
	db := storage.NewDB()
	n, err := relio.LoadDir(res.Program, db, srcDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d source facts from CSV\n", n)

	reasoner := core.New(res.Program)
	cls := reasoner.Class()
	fmt.Printf("mapping: warded=%v pwl=%v (existential invention, still warded)\n\n", cls.Warded, cls.PWL)

	st := res.Program.Store
	for i, q := range res.Queries {
		ans, info, err := reasoner.CertainAnswers(db, q, core.Auto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%s): %d certain answers\n", i+1, info.Strategy, len(ans))
		for _, tup := range ans {
			fmt.Printf("  (%v)\n", st.Names(tup))
		}
	}

	// Materialize and export the target instance.
	cres, err := chase.Run(res.Program, db, chase.Default())
	if err != nil {
		log.Fatal(err)
	}
	outDir, err := os.MkdirTemp("", "dx-target-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(outDir)
	if err := relio.DumpDir(res.Program, cres.DB, outDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaterialized target instance: %d facts (%d invented entities), exported to CSV\n",
		cres.DB.Len(), st.NullCount())
	b, err := os.ReadFile(filepath.Join(outDir, "emp.csv"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emp.csv (invented department entities render as _:n<id>):\n%s", b)
}
