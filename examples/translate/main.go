// Theorem 6.3 in action: a warded, piece-wise linear Datalog± query —
// including an existential rule — is rewritten into an equivalent
// piece-wise linear PLAIN Datalog query, which is then evaluated bottom-up.
// The example prints the generated program (each predicate cq_* stands for
// one canonical proof-tree CQ class) and shows both pipelines agree.
//
// Run with:
//
//	go run ./examples/translate
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/datalog"
	"repro/internal/parser"
	"repro/internal/prooftree"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

const source = `
% Every employee has a contract with some (possibly unknown) employer.
contract(X,E) :- employee(X).
% Employers of contracted people are liable, transitively through
% subsidiaries.
liable(E) :- contract(X,E).
liable(P) :- subsidiary(P,Q), liable(Q).

employee(ada).
contract(bob, globex).      % a concrete contract: globex is liable
subsidiary(initech, globex).
? :- contract(ada, E).
?(P) :- liable(P).
`

func main() {
	res, err := parser.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	db := storage.NewDB()
	db.InsertAll(res.Facts)

	an := analysis.Analyze(res.Program)
	warded, _ := an.IsWarded()
	pwl, _ := an.IsPWL()
	fmt.Printf("input: warded=%v pwl=%v (Theorem 6.3 requires both)\n\n", warded, pwl)

	for qi, q := range res.Queries {
		tr, err := rewrite.Translate(res.Program, q, rewrite.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ta := analysis.Analyze(tr.Program)
		tPWL, _ := ta.IsPWL()
		fmt.Printf("query %d translated to %d Datalog rules over %d CQ classes (pwl=%v, datalog=%v)\n",
			qi+1, len(tr.Program.TGDs), tr.Classes, tPWL, ta.IsFullSingleHead())

		direct, _, err := prooftree.Answers(res.Program, db, q, prooftree.Options{Mode: prooftree.Linear})
		if err != nil {
			log.Fatal(err)
		}
		viaDatalog, _, err := datalog.Answers(tr.Program, db, tr.Query,
			datalog.Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  proof-tree answers: %d, translated-Datalog answers: %d (must match)\n",
			len(direct), len(viaDatalog))
		for _, tup := range viaDatalog {
			fmt.Printf("  %v\n", res.Program.Store.Names(tup))
		}
	}

	// A peek at the generated rules for the Boolean query.
	tr, err := rewrite.Translate(res.Program, res.Queries[0], rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst rules of the translated program for query 1:\n")
	for i, tgd := range tr.Program.TGDs {
		if i >= 6 {
			fmt.Printf("  ... (%d more)\n", len(tr.Program.TGDs)-i)
			break
		}
		fmt.Printf("  %s\n", tgd.String(res.Program.Store, res.Program.Reg))
	}
}
