// Company-control knowledge graph: the classic Vadalog motivating scenario
// (paper Section 1 — "knowledge about customers, products, prices, and
// competitors"). A company X controls company Y if X owns >50% of Y
// directly, or through companies it already controls. We model the
// ownership-threshold aggregation extensionally (majority(X,Y) facts,
// since the core language has no arithmetic) and reason over control
// chains, plus an existential rule inventing an unknown ultimate parent
// for shell companies.
//
// Run with:
//
//	go run ./examples/companykg
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
)

const source = `
% control is the transitive structure over majority ownership (linear).
control(X,Y) :- majority(X,Y).
control(X,Z) :- majority(X,Y), control(Y,Z).

% every shell company has SOME (possibly unknown) controller.
control(P,X) :- shell(X).

% anyone controlling a sanctioned company is exposed.
exposed(X) :- control(X,Y), sanctioned(Y).

majority(alpha, beta).
majority(beta, gamma).
majority(gamma, delta).
majority(acme, beta).
shell(offshore1).
sanctioned(delta).
sanctioned(offshore1).

?(X,Y) :- control(X,Y).
?(X)   :- exposed(X).
? :- control(P, offshore1).
`

func main() {
	reasoner, db, queries, err := core.FromSource(source)
	if err != nil {
		log.Fatal(err)
	}
	cls := reasoner.Class()
	fmt.Printf("company-control KG: warded=%v pwl=%v levels=%d\n\n", cls.Warded, cls.PWL, cls.MaxLevel)

	names := reasoner.Program().Store
	labels := []string{"control pairs", "exposed companies", "offshore1 has some controller"}
	for i, q := range queries {
		ans, info, err := reasoner.CertainAnswers(db, q, core.Auto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (engine %s):\n", labels[i], info.Strategy)
		if q.IsBoolean() {
			fmt.Printf("  certain: %v (the controller is an invented null — value invention at work)\n\n", len(ans) > 0)
			continue
		}
		for _, tup := range ans {
			fmt.Printf("  (%s)\n", strings.Join(names.Names(tup), ", "))
		}
		fmt.Println()
	}
}
