// Quickstart: load a tiny warded, piece-wise linear program, classify it,
// and compute certain answers with the automatically selected engine (the
// linear proof-tree search of Theorem 4.2).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
)

const source = `
% Employees work in departments; departments sit in organizations.
% Every employee has some manager (existential), and managers of managers
% are reachable via the linear recursion below.

manages(M,X)   :- employee(X).          % ∃M: value invention
boss(X,Y)      :- manages(X,Y).
boss(X,Z)      :- manages(X,Y), boss(Y,Z).

employee(ada).
employee(grace).
manages(ada, grace).

?(X,Y) :- boss(X,Y).
? :- boss(X,ada).
`

func main() {
	reasoner, db, queries, err := core.FromSource(source)
	if err != nil {
		log.Fatal(err)
	}
	cls := reasoner.Class()
	fmt.Printf("warded=%v  piece-wise-linear=%v  max-level=%d\n",
		cls.Warded, cls.PWL, cls.MaxLevel)

	for i, q := range queries {
		ans, info, err := reasoner.CertainAnswers(db, q, core.Auto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %d answered by %s\n", i+1, info.Strategy)
		if q.IsBoolean() {
			fmt.Printf("  certain: %v\n", len(ans) > 0)
			continue
		}
		for _, tup := range ans {
			fmt.Printf("  (%s)\n", strings.Join(reasoner.Program().Store.Names(tup), ", "))
		}
		if st := info.ProofStats; st != nil {
			fmt.Printf("  [proof search: %d states, node-width bound %d, max state %d atoms]\n",
				st.Visited, st.Bound, st.MaxStateAtoms)
		}
	}
}
