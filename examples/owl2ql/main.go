// OWL 2 QL entailment (Example 3.3 of the paper): the warded, piece-wise
// linear rule set that encodes SPARQL answering under the OWL 2 QL direct
// semantics entailment regime, run over a small university ontology.
//
// The interesting inference chains through an EXISTENTIAL: professors are
// restricted to teach something, teaching has an inverse, and whatever is
// taught by a professor is a course — so every professor stands in a
// triple to an invented course individual, and the restriction transfers
// class memberships through that null.
//
// Run with:
//
//	go run ./examples/owl2ql
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

const data = `
% TBox: professor ⊑ staff ⊑ person; professor ⊑ ∃teaches;
%       taughtBy ≡ teaches⁻; ∃teaches⁻ ⊑ course (as a restriction)
subclass(professor, staff).
subclass(staff, person).
restriction(professor, teaches).
inverse(teaches, taughtBy).
restriction(course, taughtBy).

% ABox
type(turing, professor).
type(lovelace, professor).
type(hopper, staff).

?(X) :- type(turing, X).
?(X) :- type(X, person).
? :- triple(turing, teaches, C).
`

func main() {
	reasoner, db, queries, err := core.FromSource(workload.OWLSource + data)
	if err != nil {
		log.Fatal(err)
	}
	cls := reasoner.Class()
	fmt.Printf("Example 3.3 rules: warded=%v pwl=%v (paper: both must hold)\n\n",
		cls.Warded, cls.PWL)

	st := reasoner.Program().Store
	for i, q := range queries {
		ans, info, err := reasoner.CertainAnswers(db, q, core.Auto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%s):\n", i+1, info.Strategy)
		if q.IsBoolean() {
			fmt.Printf("  certain: %v  %s\n", len(ans) > 0,
				"(turing teaches SOME invented course individual)")
			continue
		}
		for _, tup := range ans {
			fmt.Printf("  %s\n", st.Name(tup[0]))
		}
	}
}
