// Package repro holds the experiment harness: one benchmark per experiment
// of DESIGN.md §4, regenerating the measurable content of the paper's
// claims (the paper is a theory paper — its "tables" are complexity and
// expressiveness statements plus the §1.2 benchmark statistics; see
// EXPERIMENTS.md for the mapping and the recorded outcomes).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/prooftree"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
	"repro/internal/tiling"
	"repro/internal/workload"
)

// tcLinear is the linear transitive-closure program (paper §1.2).
const tcLinear = `
t(X,Y) :- e(X,Y).
t(X,Z) :- e(X,Y), t(Y,Z).
`

// tcAssoc is the associative (non-PWL, warded) variant.
const tcAssoc = `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), t(Y,Z).
`

func mustParse(b *testing.B, src string) *parser.Result {
	b.Helper()
	r, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func reachQuery(b *testing.B, prog *logic.Program) *logic.CQ {
	b.Helper()
	r, err := parser.ParseInto(prog, `?(A,B) :- t(A,B).`)
	if err != nil {
		b.Fatal(err)
	}
	return r.Queries[0]
}

// --------------------------------------------------------------------
// E1 — Theorem 4.2 (NLogSpace data complexity for WARD ∩ PWL): the
// per-state footprint of the linear proof-tree search stays logarithmic
// in the database size (bytes/state ~ constant atoms × log-sized constant
// names), while the number of DB facts grows linearly. Metrics: states
// visited, max bytes per state.
// --------------------------------------------------------------------

func BenchmarkE1_PWLProofSearchChain(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			res := mustParse(b, tcLinear)
			prog := res.Program
			db := workload.Chain(n).DB(prog, "e", "n")
			q := reachQuery(b, prog)
			tuple := []term.Term{prog.Store.Const("n0"), prog.Store.Const(fmt.Sprintf("n%d", n-1))}
			var last *prooftree.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, st, err := prooftree.Decide(prog, db, q, tuple, prooftree.Options{Mode: prooftree.Linear})
				if err != nil || !ok {
					b.Fatalf("decide: %v ok=%v", err, ok)
				}
				last = st
			}
			b.ReportMetric(float64(last.Visited), "states")
			b.ReportMetric(float64(last.MaxStateBytes), "bytes/state")
			b.ReportMetric(float64(last.MaxStateAtoms), "atoms/state")
		})
	}
}

func BenchmarkE1_PWLProofSearchOWL(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("classes=%d", n), func(b *testing.B) {
			// A pure subclass-chain ontology: discharge choices stay
			// forced, so the search is the OWL analogue of the chain
			// walk and the SPACE metrics isolate the Theorem 4.2 claim.
			// (Denser ontologies make the determinized search enumerate a
			// polynomially dense state space — poly TIME is exactly what
			// NL-determinization costs; see the Oracle option for the
			// hybrid that practical deployments would use.)
			o, err := workload.GenOWL(workload.OWLParams{
				Classes: n, Chains: 1, Restrictions: 0, Individuals: 1,
				NoInverses: true, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			qres, err := parser.ParseInto(o.Program, `?(X) :- type(ind_0, X).`)
			if err != nil {
				b.Fatal(err)
			}
			q := qres.Queries[0]
			// ind_0 sits at the bottom of chain 0; the chain's top class
			// is a certain answer reached through n-1 subclass steps.
			tuple := []term.Term{o.Program.Store.Const("cls_0_" + fmt.Sprint(n-1))}
			var last *prooftree.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, st, err := prooftree.Decide(o.Program, o.DB, q, tuple, prooftree.Options{Mode: prooftree.Linear})
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("expected positive answer")
				}
				last = st
			}
			b.ReportMetric(float64(last.Visited), "states")
			b.ReportMetric(float64(last.MaxStateBytes), "bytes/state")
		})
	}
}

// --------------------------------------------------------------------
// E2 — Proposition 3.2 (PTime data complexity for WARD): the chase
// materializes the polynomial closure; facts grow quadratically on
// chains, the contrast to E1's per-state bytes.
// --------------------------------------------------------------------

func BenchmarkE2_WardedChaseChain(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Same linear TC program as E1: the contrast is pure engine —
			// per-state bytes (E1) vs materialized facts (E2).
			res := mustParse(b, tcLinear)
			prog := res.Program
			db := workload.Chain(n).DB(prog, "e", "n")
			var facts int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cres, err := chase.Run(prog, db, chase.Default())
				if err != nil || cres.Truncated {
					b.Fatalf("chase: %v truncated=%v", err, cres.Truncated)
				}
				facts = cres.DB.Len()
			}
			b.ReportMetric(float64(facts), "facts")
		})
	}
}

// --------------------------------------------------------------------
// E3 — §1.2 statistics: ~55% of scenarios use piece-wise linear recursion
// directly, ~15% more become PWL after eliminating unnecessary non-linear
// recursion (~70% total). The bench classifies a 200-scenario iWarded
// suite and reports the measured fractions.
// --------------------------------------------------------------------

func BenchmarkE3_Classification(b *testing.B) {
	suite, err := workload.GenSuite(workload.DefaultSuiteParams(200, 42))
	if err != nil {
		b.Fatal(err)
	}
	var pwl, lineariz, warded int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pwl, lineariz, warded = 0, 0, 0
		for _, sc := range suite {
			c := analysis.Classify(sc.Program)
			if c.Warded {
				warded++
			}
			if c.PWL {
				pwl++
			} else if c.Linearizable {
				lineariz++
			}
		}
	}
	b.ReportMetric(float64(pwl)/float64(len(suite))*100, "%direct-pwl")
	b.ReportMetric(float64(lineariz)/float64(len(suite))*100, "%linearizable")
	b.ReportMetric(float64(pwl+lineariz)/float64(len(suite))*100, "%pwl-total")
	b.ReportMetric(float64(warded)/float64(len(suite))*100, "%warded")
}

// --------------------------------------------------------------------
// E4 — Theorem 5.1: the tiling reduction. Faithfulness is asserted in
// internal/tiling's tests; the bench measures the bounded chase of the
// fixed PWL (non-warded) program on a solvable instance.
// --------------------------------------------------------------------

func BenchmarkE4_TilingReduction(b *testing.B) {
	sys := &tiling.System{
		Tiles: []string{"w", "k", "wr", "kr"},
		Left:  map[string]bool{"w": true, "k": true},
		Right: map[string]bool{"wr": true, "kr": true},
		Horiz: map[[2]string]bool{{"w", "wr"}: true, {"k", "kr"}: true},
		Vert: map[[2]string]bool{
			{"w", "k"}: true, {"k", "w"}: true,
			{"wr", "kr"}: true, {"kr", "wr"}: true,
		},
		Start: "w", Finish: "k",
	}
	red, err := tiling.Reduce(sys)
	if err != nil {
		b.Fatal(err)
	}
	opt := chase.Options{Restricted: true, MaxDepth: 8, MaxRounds: 200, MaxFacts: 200000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, _, err := chase.CertainAnswers(red.Program, red.DB, red.Query, opt)
		if err != nil || len(ans) != 1 {
			b.Fatalf("reduction failed: %v ans=%d", err, len(ans))
		}
	}
}

// --------------------------------------------------------------------
// E5 — Theorem 6.3: translation to piece-wise linear Datalog. The bench
// translates the TC query and evaluates the translated program, asserting
// agreement with direct evaluation.
// --------------------------------------------------------------------

func BenchmarkE5_Translation(b *testing.B) {
	src := tcLinear + `?(X,Y) :- t(X,Y).`
	res := mustParse(b, src)
	tr, err := rewrite.Translate(res.Program, res.Queries[0], rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	db := workload.Chain(24).DB(res.Program, "e", "n")
	want, _, err := datalog.Answers(res.Program, db, res.Queries[0], datalog.Options{Stratify: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(tr.Classes), "classes")
	b.ReportMetric(float64(len(tr.Program.TGDs)), "rules")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := datalog.Answers(tr.Program, db, tr.Query, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(want) {
			b.Fatalf("translation disagrees: %d vs %d", len(got), len(want))
		}
	}
}

// --------------------------------------------------------------------
// E7 — §7(1): guide-structure termination control. On an existential
// recursion the chase without the trigger memo diverges (hits the fact
// budget); with the memo it terminates with a small instance. Metrics:
// facts materialized, suppressed triggers.
// --------------------------------------------------------------------

func BenchmarkE7_TerminationControl(b *testing.B) {
	src := `
r(X,W) :- p(X).
p(Y) :- r(X,Y).
`
	for _, memo := range []bool{true, false} {
		b.Run(fmt.Sprintf("memo=%v", memo), func(b *testing.B) {
			res := mustParse(b, src)
			prog := res.Program
			db := storage.NewDB()
			p := prog.Reg.Intern("p", 1)
			for i := 0; i < 50; i++ {
				db.Insert(atom.New(p, prog.Store.Const(fmt.Sprintf("c%d", i))))
			}
			opt := chase.Options{Restricted: true, TriggerMemo: memo,
				MaxRounds: 10000, MaxFacts: 20000}
			var facts, suppressed int
			var truncated bool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cres, err := chase.Run(prog, db, opt)
				if err != nil {
					b.Fatal(err)
				}
				facts, suppressed, truncated = cres.DB.Len(), cres.SuppressedByMemo, cres.Truncated
			}
			b.ReportMetric(float64(facts), "facts")
			b.ReportMetric(float64(suppressed), "suppressed")
			b.ReportMetric(boolMetric(truncated), "truncated")
		})
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --------------------------------------------------------------------
// E8 — §7(2): join ordering biased towards the recursive atom. Metric:
// index probes per evaluation.
// --------------------------------------------------------------------

func BenchmarkE8_JoinOrdering(b *testing.B) {
	for _, biased := range []bool{true, false} {
		b.Run(fmt.Sprintf("biased=%v", biased), func(b *testing.B) {
			res := mustParse(b, tcLinear)
			prog := res.Program
			db := workload.Chain(512).DB(prog, "e", "n")
			opt := datalog.Options{Stratify: true, BiasRecursiveAtom: biased}
			var probes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := datalog.Eval(prog, db, opt)
				if err != nil {
					b.Fatal(err)
				}
				probes = stats.Probes
			}
			b.ReportMetric(float64(probes), "probes")
		})
	}
}

// --------------------------------------------------------------------
// E9 — §7(3): materialization at stratum boundaries (stratified
// evaluation) vs one global fixpoint. Metrics: rounds and peak delta.
// --------------------------------------------------------------------

func BenchmarkE9_Materialization(b *testing.B) {
	src := tcLinear + `
reach(X) :- t(X,Y), goal(Y).
meet(X,Y) :- reach(X), reach(Y).
`
	for _, strat := range []bool{true, false} {
		b.Run(fmt.Sprintf("stratified=%v", strat), func(b *testing.B) {
			res := mustParse(b, src)
			prog := res.Program
			db := workload.Chain(256).DB(prog, "e", "n")
			goal := prog.Reg.Intern("goal", 1)
			db.Insert(atom.New(goal, prog.Store.Const("n255")))
			opt := datalog.Options{Stratify: strat, BiasRecursiveAtom: true}
			var rounds, peak int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := datalog.Eval(prog, db, opt)
				if err != nil {
					b.Fatal(err)
				}
				rounds, peak = stats.Rounds, stats.PeakDelta
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(peak), "peak-delta")
		})
	}
}

// --------------------------------------------------------------------
// E10 — §1.2 linearization: the associative TC program evaluates
// identically to its linearized form; the linear form needs fewer probes.
// --------------------------------------------------------------------

func BenchmarkE10_Linearization(b *testing.B) {
	for _, lin := range []bool{false, true} {
		b.Run(fmt.Sprintf("linearized=%v", lin), func(b *testing.B) {
			res := mustParse(b, tcAssoc)
			prog := res.Program
			if lin {
				out, changed := analysis.EliminateNonLinearRecursion(prog)
				if !changed {
					b.Fatal("linearization did not fire")
				}
				prog = out
			}
			db := workload.Chain(128).DB(prog, "e", "n")
			var derived int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := datalog.Eval(prog, db, datalog.Options{Stratify: true, BiasRecursiveAtom: true})
				if err != nil {
					b.Fatal(err)
				}
				derived = stats.Derived
			}
			b.ReportMetric(float64(derived), "derived")
		})
	}
}

// --------------------------------------------------------------------
// P1 — the compiled-plan pipeline (internal/plan): multi-round fixpoint
// cost of the shared RulePlan execution across all three engines. The TC
// chain forces one semi-naive round per path length, so per-round overhead
// (join-order recomputation, per-binding map allocation — both eliminated
// by the plan refactor) dominates. ns/op and allocs/op here are the
// before/after metric recorded in CHANGES.md.
// --------------------------------------------------------------------

func BenchmarkP1_PlanFixpointSeq(b *testing.B) {
	res := mustParse(b, tcLinear)
	prog := res.Program
	db := workload.Chain(256).DB(prog, "e", "n")
	opt := datalog.Options{Stratify: true, BiasRecursiveAtom: true}
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := datalog.Eval(prog, db, opt)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkP1_PlanFixpointSeqBudget is BenchmarkP1_PlanFixpointSeq with a
// generous (never-tripping) budget attached: the delta against the
// unbudgeted run above is the hot-loop cost of the robustness machinery —
// one local counter decrement per probe, one shared atomic flush per
// BudgetStride. Acceptance: ≤2% overhead.
func BenchmarkP1_PlanFixpointSeqBudget(b *testing.B) {
	res := mustParse(b, tcLinear)
	prog := res.Program
	db := workload.Chain(256).DB(prog, "e", "n")
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := datalog.Options{
			Stratify: true, BiasRecursiveAtom: true,
			Budget: plan.NewBudget(nil, 0, 1<<60),
		}
		_, stats, err := datalog.Eval(prog, db, opt)
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// The worker ladder (w1/w2/w4/w8 against the sequential baseline above)
// is the parallel-scaling record of BENCH_pr*.json: cmd/benchjson's
// -baseline flag folds these into per-worker speedup entries.
func BenchmarkP1_PlanFixpointParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			res := mustParse(b, tcLinear)
			prog := res.Program
			db := workload.Chain(256).DB(prog, "e", "n")
			opt := datalog.Options{Stratify: true, BiasRecursiveAtom: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := datalog.EvalParallel(prog, db, opt, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP1_PlanFixpointParallelDense: a dense non-linear closure whose
// rounds exceed the fan-out threshold, so the worker pool, the columnar
// job buffers, and the bulk merge actually engage (on the TC-256 chain
// every round is below the threshold and the parallel engine rightly runs
// inline). The sequential run on the same instance is the scaling
// denominator.
func BenchmarkP1_PlanFixpointParallelDense(b *testing.B) {
	const n = 128
	build := func() (*logic.Program, *storage.DB) {
		res := mustParse(b, tcAssoc)
		prog := res.Program
		db := workload.Chain(n).DB(prog, "e", "n")
		e := prog.Reg.Intern("e", 2)
		for i := 0; i < n; i += 3 {
			db.Insert(atom.New(e,
				prog.Store.Const(fmt.Sprintf("n%d", i)),
				prog.Store.Const(fmt.Sprintf("n%d", (i+37)%n))))
		}
		return prog, db
	}
	opt := datalog.Options{Stratify: true, BiasRecursiveAtom: true}
	b.Run("seq", func(b *testing.B) {
		prog, db := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := datalog.Eval(prog, db, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prog, db := build()
			var fanned int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := datalog.EvalParallel(prog, db, opt, workers)
				if err != nil {
					b.Fatal(err)
				}
				fanned = stats.FannedRounds
			}
			b.ReportMetric(float64(fanned), "fanned-rounds")
		})
	}
}

func BenchmarkP1_PlanChaseTC(b *testing.B) {
	res := mustParse(b, tcLinear)
	prog := res.Program
	db := workload.Chain(256).DB(prog, "e", "n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cres, err := chase.Run(prog, db, chase.Default())
		if err != nil || cres.Truncated {
			b.Fatalf("chase: %v truncated=%v", err, cres.Truncated)
		}
	}
}

// --------------------------------------------------------------------
// E11 — PSpace combined complexity: proof-search effort grows with the
// PROGRAM (number of stacked PWL modules) at fixed data.
// --------------------------------------------------------------------

func BenchmarkE11_CombinedComplexity(b *testing.B) {
	for _, modules := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("modules=%d", modules), func(b *testing.B) {
			params := workload.DefaultSuiteParams(1, 7)
			params.ModulesPer = modules
			params.DataSize = 32
			sc, err := workload.GenScenario(workload.ShapePWL, 7, params)
			if err != nil {
				b.Fatal(err)
			}
			var last *prooftree.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := prooftree.Answers(sc.Program, sc.DB, sc.Query,
					prooftree.Options{Mode: prooftree.Linear, MaxVisited: 5_000_000})
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(float64(last.Bound), "bound")
			b.ReportMetric(float64(last.Visited), "states")
		})
	}
}
