package repro

import (
	"fmt"
	"testing"

	"repro/internal/atom"
	"repro/internal/incremental"
	"repro/internal/logic"
	"repro/internal/workload"
)

// --------------------------------------------------------------------
// P2 — in-place DRed (internal/incremental): cost of maintaining a live
// TC materialization under deletions. The single-retraction runs delete
// (and, off the clock, re-insert) the last chain edge — the small-cone
// regime incremental maintenance targets: only the n facts t(x, n-1)
// are overdeleted, so wall-clock must stay sublinear in the O(n²)
// instance and allocs/op must not scale with it (the pre-tombstone
// engine rebuilt both stores from scratch per Delete). The churn run is
// the mixed workload: one op = delete+re-insert every 10th chain edge,
// middle edges included, so overdelete/rederive cones span all sizes.
// ns/op and allocs/op are the before/after metric of CHANGES.md.
// --------------------------------------------------------------------

func chainEdge(prog *logic.Program, x, y int) atom.Atom {
	e := prog.Reg.Intern("e", 2)
	return atom.New(e,
		prog.Store.Const(fmt.Sprintf("n%d", x)),
		prog.Store.Const(fmt.Sprintf("n%d", y)))
}

func BenchmarkIncrementalDelete(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("TC-%d/single", n), func(b *testing.B) {
			res := mustParse(b, tcLinear)
			prog := res.Program
			base := workload.Chain(n).DB(prog, "e", "n")
			eng, err := incremental.New(prog, base)
			if err != nil {
				b.Fatal(err)
			}
			last := chainEdge(prog, n-2, n-1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Delete(last); err != nil {
					b.Fatal(err)
				}
				// Restore the closure for the next iteration off the clock:
				// only Delete is measured.
				b.StopTimer()
				if err := eng.Insert(last); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			st := eng.Stats()
			b.ReportMetric(float64(st.Overdeleted)/float64(b.N), "overdel/op")
			b.ReportMetric(float64(st.Rederived)/float64(b.N), "rederived/op")
		})
	}
	b.Run("TC-256/churn10", func(b *testing.B) {
		const n = 256
		res := mustParse(b, tcLinear)
		prog := res.Program
		base := workload.Chain(n).DB(prog, "e", "n")
		eng, err := incremental.New(prog, base)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k+1 < n; k += 10 {
				ed := chainEdge(prog, k, k+1)
				if err := eng.Delete(ed); err != nil {
					b.Fatal(err)
				}
				if err := eng.Insert(ed); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		st := eng.Stats()
		b.ReportMetric(float64(st.Rederived)/float64(b.N), "rederived/op")
	})
}
